package lint

import (
	"go/ast"
	"go/types"
)

// errcheck-io: errors on the log write path must not be discarded.
// The replaylog encoder and the buffered writers under it are exactly
// where faultinject aims its write faults (shortwrite, flush.crash),
// so a dropped error there turns an injected-and-detected fault into
// a silently truncated log — the one failure mode the robustness PR
// forbids. Flagged: a call whose error result is discarded (expression
// statement, or assigned to _) when the callee is (a) any function of
// package replaylog returning an error, (b) any Flush method returning
// an error (bufio.Writer and friends), or (c) Close / SetDeadline /
// SetReadDeadline / SetWriteDeadline on a net.Conn-shaped receiver.
// A dropped Close on a socket hides the write error TCP only surfaces
// at close time; a dropped SetDeadline means the daemon's frame
// timeouts silently never arm. The receiver must carry net.Conn's
// full method set (including LocalAddr/RemoteAddr), so *os.File —
// which also has Close and the deadline setters — stays unflagged.

var errcheckIOCheck = &Check{
	Name: "errcheck-io",
	Doc:  "no discarded errors from replaylog encode/decode or Flush on the log write path",
	Run: func(pass *Pass) {
		for _, pkg := range pass.Prog.Pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch st := n.(type) {
					case *ast.ExprStmt:
						if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
							if why := ioErrCall(pkg, call); why != "" {
								pass.Report(pkg, call, "%s error discarded (fault injection targets this path; handle or propagate it)", why)
							}
						}
					case *ast.AssignStmt:
						checkAssignDiscard(pass, pkg, st)
					case *ast.DeferStmt:
						if why := ioErrCall(pkg, st.Call); why != "" {
							pass.Report(pkg, st.Call, "%s error discarded by defer (wrap in a closure that records it)", why)
						}
					case *ast.GoStmt:
						if why := ioErrCall(pkg, st.Call); why != "" {
							pass.Report(pkg, st.Call, "%s error discarded by go statement", why)
						}
					}
					return true
				})
			}
		}
	},
}

// ioErrCall reports why a call is on the checked IO surface ("" when
// it is not): a replaylog function or a Flush method, returning error.
func ioErrCall(pkg *Package, call *ast.CallExpr) string {
	obj := calleeObj(pkg, call)
	if obj == nil || !lastResultIsError(pkg, call) {
		return ""
	}
	if pkgPathIs(objPkgPath(obj), "replaylog") {
		return "replaylog." + obj.Name()
	}
	if obj.Name() == "Flush" && isMethod(obj) {
		return recvTypeName(obj) + ".Flush"
	}
	if connErrMethods[obj.Name()] && isMethod(obj) && isConnShaped(recvType(obj)) {
		return recvTypeName(obj) + "." + obj.Name()
	}
	return ""
}

// connErrMethods are the error-returning net.Conn methods whose
// dropped errors the check flags. Read/Write are excluded: their
// errors flow through io plumbing that other code already checks.
var connErrMethods = map[string]bool{
	"Close":            true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// connShape is net.Conn's full method set. Requiring all of it —
// LocalAddr and RemoteAddr included — is what distinguishes a socket
// from *os.File, which shares Close and the three deadline setters.
var connShape = []string{
	"Read", "Write", "Close", "LocalAddr", "RemoteAddr",
	"SetDeadline", "SetReadDeadline", "SetWriteDeadline",
}

// recvType returns a method's receiver type, nil for non-methods.
func recvType(obj types.Object) types.Type {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isConnShaped reports whether t's method set covers all of net.Conn.
// The check is structural (names only, via the pointer method set for
// concrete types), so it catches net.Conn itself, *net.TCPConn, and
// this repo's fault-injecting wrappers without the lint tool importing
// package net.
func isConnShaped(t types.Type) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(t)
	if _, isIface := t.Underlying().(*types.Interface); !isIface {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for _, name := range connShape {
		if ms.Lookup(nil, name) == nil {
			return false
		}
	}
	return true
}

// checkAssignDiscard flags `_ = replaylog.Encode(...)` and
// multi-result forms whose error position lands on a blank.
func checkAssignDiscard(pass *Pass, pkg *Package, st *ast.AssignStmt) {
	// Only the single-call RHS forms can discard a call's error into a
	// blank: `_ = f()` or `a, _ := g()`.
	if len(st.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	why := ioErrCall(pkg, call)
	if why == "" {
		return
	}
	// The error is the last result, so it binds to the last LHS.
	last := st.Lhs[len(st.Lhs)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "_" {
		pass.Report(pkg, st, "%s error assigned to _ (fault injection targets this path; handle or propagate it)", why)
	}
}
