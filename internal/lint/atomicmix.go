package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// atomicmix: a struct field is either a plain field or an atomic —
// never both. Mixing `atomic.AddUint64(&s.n, 1)` with a plain `s.n`
// read elsewhere is a data race the memory model gives no meaning to,
// and on a relaxed-consistency machine (the very subject of this
// codebase) the plain load can legally observe a stale or torn value
// forever. The typed sync/atomic wrappers (atomic.Uint64 et al.) make
// the mix inexpressible; this check covers the function-style API,
// where the field type stays a plain integer and nothing stops a
// later maintainer from writing `s.n++`.
//
// The check is whole-program: atomic access in one package and plain
// access in another still mix. Findings are reported at every PLAIN
// access (the side that breaks the discipline), naming one atomic
// site as evidence. Composite-literal initialization is not flagged:
// construction happens-before publication.
//
// Soundness caveat: access through a stored pointer (`p := &s.n;
// atomic.AddUint64(p, 1)`) is invisible — the check sees only direct
// selector-rooted uses.

var atomicmixCheck = &Check{
	Name: "atomicmix",
	Doc:  "no struct field is accessed both through sync/atomic and by plain load/store",
	Run: func(pass *Pass) {
		type site struct {
			pkg *Package
			pos token.Pos
		}
		atomicSites := make(map[*types.Var][]site)
		atomicArgSel := make(map[*ast.SelectorExpr]bool)

		// Pass 1: find every &field handed to a sync/atomic function.
		for _, pkg := range pass.Prog.Pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(x ast.Node) bool {
					call, ok := x.(*ast.CallExpr)
					if !ok {
						return true
					}
					obj := calleeObj(pkg, call)
					if obj == nil || objPkgPath(obj) != "sync/atomic" || !isAtomicFnName(obj.Name()) {
						return true
					}
					if len(call.Args) == 0 {
						return true
					}
					un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						return true
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if fv := fieldVarOf(pkg, sel); fv != nil {
						atomicSites[fv] = append(atomicSites[fv], site{pkg: pkg, pos: sel.Pos()})
						atomicArgSel[sel] = true
					}
					return true
				})
			}
		}
		if len(atomicSites) == 0 {
			return
		}

		// Pass 2: every other selector-rooted use of those fields is a
		// plain access.
		type finding struct {
			pkg   *Package
			pos   token.Pos
			field *types.Var
			disp  string
		}
		var findings []finding
		for _, pkg := range pass.Prog.Pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(x ast.Node) bool {
					sel, ok := x.(*ast.SelectorExpr)
					if !ok || atomicArgSel[sel] {
						return true
					}
					fv := fieldVarOf(pkg, sel)
					if fv == nil {
						return true
					}
					if _, mixed := atomicSites[fv]; !mixed {
						return true
					}
					findings = append(findings, finding{
						pkg: pkg, pos: sel.Sel.Pos(), field: fv,
						disp: fieldDisp(pkg, sel, fv),
					})
					return true
				})
			}
		}
		sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
		for _, fd := range findings {
			sites := atomicSites[fd.field]
			ref := pass.Prog.Fset.Position(sites[0].pos)
			pass.ReportPos(fd.pkg, fd.pos,
				"plain access to %s, which is accessed with sync/atomic (e.g. %s:%d) — pick one discipline or use the typed atomic wrappers",
				fd.disp, shortPath(ref.Filename), ref.Line)
		}
	},
}

// isAtomicFnName matches the function-style sync/atomic API.
func isAtomicFnName(name string) bool {
	for _, p := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// fieldVarOf resolves a selector to the struct field it names (nil
// for methods, package members, and non-field selections).
func fieldVarOf(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// fieldDisp renders "Type.field" for the diagnostic.
func fieldDisp(pkg *Package, sel *ast.SelectorExpr, fv *types.Var) string {
	if t := exprType(pkg, sel.X); t != nil {
		if named := namedOf(t); named != nil {
			return named.Obj().Name() + "." + fv.Name()
		}
	}
	return fv.Name()
}

// shortPath trims a filename to its final two path elements for
// in-message references (full paths stay on the diagnostic position).
func shortPath(p string) string {
	parts := strings.Split(p, "/")
	if len(parts) <= 2 {
		return p
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
