package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// shardsafety: the sharded run loop (machine.Config.Shards) splits
// every cycle into a serial memory phase (the coordinator) and a
// parallel core phase (the shard workers). State that is
// machine-global — the coherence event heap and its sequence counter,
// the ring's injection queues, the aggregate Stats — must never be
// touched from the core phase except through an epoch handoff that
// stages the effect per core and replays it at the barrier. The
// ROADMAP calls this the shard-safety invariant; this check makes it
// a build-time error instead of an -race lottery ticket.
//
// Three doc-comment annotations define the roles:
//
//   - `//rrlint:shardphase` — the function runs on shard workers
//     during the core phase (cpu.Core.Tick, the L1 submit path, the
//     recorder tick, the worker loop itself).
//   - `//rrlint:coordinator` — the function touches machine-global
//     state and must only run on the coordinator (heap scheduling,
//     ring injection).
//   - `//rrlint:handoff` — the function is an epoch handoff funnel:
//     it stages its effect during the core phase and is therefore
//     safe to call from anywhere. Traversal stops here — a handoff's
//     own unstaged branch may legitimately reach coordinator-only
//     code (it replays at the barrier).
//
// The check walks the shared call graph from every shardphase
// function, stopping at handoffs, and reports any path that reaches a
// coordinator-only function — at the call site in the shardphase
// frame, with the chain that gets there, so the report lands where
// the fix belongs. Suppressions (`//rrlint:allow shardsafety`) bind
// to that reported site.
//
// Soundness caveats, same spirit as the engine's (DESIGN.md §18):
// dynamic calls (interface methods, function values) are opaque, so
// the entry points behind them (e.g. the L1 submit behind
// cpu.MemPort) carry their own shardphase annotation; and a function
// with no annotation that mutates global state directly is invisible
// unless some annotated caller reaches it through an annotated
// coordinator. The annotations are the contract; the check enforces
// their composition.

var shardsafetyCheck = &Check{
	Name: "shardsafety",
	Doc:  "no //rrlint:shardphase function may reach an //rrlint:coordinator function except through an //rrlint:handoff",
	Run: func(pass *Pass) {
		facts := pass.Prog.Facts()
		roles := collectShardRoles(pass.Prog, facts)
		reach := coordinatorReach(facts, roles)
		for _, n := range facts.nodes {
			if roles.kind(n) != roleShardphase {
				continue
			}
			reported := map[*funcNode]bool{}
			for _, cs := range n.calls {
				callee := cs.callee
				switch roles.kind(callee) {
				case roleHandoff:
					continue
				case roleCoordinator:
					if !reported[callee] {
						reported[callee] = true
						pass.ReportPos(n.pkg, cs.pos,
							"core-phase function %s calls coordinator-only %s (machine-global state; route it through an epoch handoff)",
							n.name, callee.name)
					}
					continue
				}
				for _, target := range sortedReach(reach[callee]) {
					if reported[target.node] {
						continue
					}
					reported[target.node] = true
					via := callee.name
					if target.via != "" {
						via += " -> " + target.via
					}
					pass.ReportPos(n.pkg, cs.pos,
						"core-phase function %s reaches coordinator-only %s via %s (machine-global state; route it through an epoch handoff)",
						n.name, target.node.name, via)
				}
			}
		}
	},
}

type shardRole int

const (
	roleNone shardRole = iota
	roleShardphase
	roleCoordinator
	roleHandoff
)

// shardRoles maps call-graph nodes to their annotated role.
type shardRoles struct {
	byNode map[*funcNode]shardRole
}

func (r shardRoles) kind(n *funcNode) shardRole { return r.byNode[n] }

// collectShardRoles scans every function declaration's doc comment
// for the three role annotations. A function carrying more than one
// role keeps the strictest interpretation for traversal: handoff wins
// (it exists to be called from the core phase), then coordinator.
func collectShardRoles(prog *Program, facts *Facts) shardRoles {
	roles := shardRoles{byNode: make(map[*funcNode]shardRole)}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Doc == nil {
					continue
				}
				role := roleNone
				for _, c := range fd.Doc.List {
					switch {
					case strings.Contains(c.Text, "rrlint:handoff"):
						role = roleHandoff
					case strings.Contains(c.Text, "rrlint:coordinator") && role != roleHandoff:
						role = roleCoordinator
					case strings.Contains(c.Text, "rrlint:shardphase") && role == roleNone:
						role = roleShardphase
					}
				}
				if role == roleNone {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				if n := facts.byObj[obj]; n != nil {
					roles.byNode[n] = role
				}
			}
		}
	}
	return roles
}

// coordTarget is one coordinator-only function reachable from a node,
// with the call chain that reaches it ("" when the node calls it
// directly).
type coordTarget struct {
	node *funcNode
	via  string
}

// coordinatorReach computes, for every node, the set of
// coordinator-only functions its call graph reaches without passing
// through a handoff. The fixpoint mirrors the engine's summary
// propagation: entries only accumulate and are bounded by the
// annotated vocabulary, so it terminates; the round bound is a
// defensive backstop.
func coordinatorReach(facts *Facts, roles shardRoles) map[*funcNode]map[*funcNode]string {
	reach := make(map[*funcNode]map[*funcNode]string)
	record := func(n *funcNode, target *funcNode, via string) bool {
		m := reach[n]
		if m == nil {
			m = make(map[*funcNode]string)
			reach[n] = m
		}
		if _, ok := m[target]; ok {
			return false
		}
		m[target] = via
		return true
	}
	for round := 0; round <= len(facts.nodes); round++ {
		changed := false
		for _, n := range facts.nodes {
			if roles.kind(n) == roleHandoff {
				continue // callers stop at handoffs; no propagation out
			}
			for _, cs := range n.calls {
				callee := cs.callee
				switch roles.kind(callee) {
				case roleHandoff:
					continue
				case roleCoordinator:
					if record(n, callee, "") {
						changed = true
					}
					continue
				}
				for _, t := range sortedReach(reach[callee]) {
					via := callee.name
					if t.via != "" {
						via += " -> " + t.via
					}
					if record(n, t.node, via) {
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return reach
}

// sortedReach renders a reach map in deterministic (name, via) order
// so diagnostics and golden files are stable across runs.
func sortedReach(m map[*funcNode]string) []coordTarget {
	if len(m) == 0 {
		return nil
	}
	out := make([]coordTarget, 0, len(m))
	for n, via := range m {
		out = append(out, coordTarget{node: n, via: via})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].node.name != out[j].node.name {
			return out[i].node.name < out[j].node.name
		}
		return out[i].via < out[j].via
	})
	return out
}
