package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroleak: every `go` statement must have a termination path visible
// at the launch site. A goroutine with no context, no done-channel
// and no WaitGroup is unsupervised: nothing can tell it to stop and
// nothing waits for it, so under load (one goroutine per connection,
// per session, per chaos cell) the leak compounds until the process
// is mostly abandoned stacks. The check accepts, as supervision:
//
//   - a context.Context in the launched function's body or arguments
//     (cancellation reaches it),
//   - a receive from — or close of — a channel declared OUTSIDE the
//     goroutine body (the done-channel pattern, both halves),
//   - a sync.WaitGroup Done or Wait in the body (the launcher joins
//     it),
//   - a sync.Cond Wait (the launcher can broadcast it out).
//
// A SEND on an outside channel deliberately does not count: "sends a
// result nobody receives" is the classic leaked-goroutine shape, not
// a termination path. Goroutines whose lifetime is legitimately the
// process or a connection (an http.Serve loop, a reader that exits
// when its conn closes) carry an `//rrlint:allow goroleak` with the
// justification, so every supervision exception is audited text, not
// tribal knowledge.
//
// Soundness caveat: a launch of a function value or an out-of-program
// function has no visible body and is skipped, and supervision is
// syntactic presence, not proof the path is reachable.

var goroleakCheck = &Check{
	Name: "goroleak",
	Doc:  "every go statement is supervised by a context, done-channel, or WaitGroup visible at the launch site",
	Run: func(pass *Pass) {
		facts := pass.Prog.Facts()
		for _, n := range facts.nodes {
			for _, g := range n.gos {
				body, ok := launchedBody(facts, n.pkg, g.call)
				if !ok {
					continue // no visible body: nothing to judge
				}
				if contextInArgs(n.pkg, g.call) {
					continue
				}
				pkg, launched := body.pkg, body.node
				if supervised(pkg, launched) {
					continue
				}
				pass.ReportPos(n.pkg, g.pos,
					"goroutine has no visible termination path (no context, done-channel receive/close, or WaitGroup in %s)", body.name)
			}
		}
	},
}

type launched struct {
	pkg  *Package
	node *ast.BlockStmt
	name string
}

// launchedBody resolves the body the go statement starts: a function
// literal, or a declared function/method loaded in this program.
func launchedBody(facts *Facts, pkg *Package, call *ast.CallExpr) (launched, bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if n := facts.byLit[lit]; n != nil {
			return launched{pkg: n.pkg, node: n.body, name: "the goroutine body"}, true
		}
		return launched{pkg: pkg, node: lit.Body, name: "the goroutine body"}, true
	}
	obj := calleeObj(pkg, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return launched{}, false
	}
	if n := facts.byObj[fn]; n != nil {
		return launched{pkg: n.pkg, node: n.body, name: n.name}, true
	}
	return launched{}, false
}

// contextInArgs reports whether any launch argument carries a
// context.Context — cancellation visibly travels into the goroutine.
func contextInArgs(pkg *Package, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if t := exprType(pkg, a); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Name() == "Context" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context"
}

// supervised scans a goroutine body for any accepted termination path.
func supervised(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.CallExpr:
			obj := calleeObj(pkg, v)
			if tn, mn := syncMethodOf(obj); tn == "WaitGroup" && (mn == "Done" || mn == "Wait") ||
				tn == "Cond" && mn == "Wait" {
				found = true
				return false
			}
			// close(ch) on an outside channel: the announce half of the
			// done-channel pattern — the launcher can join on it.
			if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(v.Args) == 1 {
					if outsideChannel(pkg, body, v.Args[0]) {
						found = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && outsideChannel(pkg, body, v.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if t := exprType(pkg, v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && outsideChannel(pkg, body, v.X) {
					found = true
					return false
				}
			}
		case *ast.Ident:
			// A context.Context in scope (parameter or free variable).
			if obj := pkg.Info.ObjectOf(v); obj != nil && isContextType(obj.Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// outsideChannel reports whether e roots at an identifier declared
// outside the goroutine body — i.e. state the launch site can see. A
// timer or channel created inside the goroutine proves nothing about
// external supervision.
func outsideChannel(pkg *Package, body *ast.BlockStmt, e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}
