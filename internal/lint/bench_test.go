package lint

import (
	"path/filepath"
	"testing"
	"time"
)

// repoRoot is the module root relative to this package.
var repoRoot = filepath.Join("..", "..")

// BenchmarkRepoLoad isolates the parse+type-check cost: the one-time
// work every rrlint invocation pays before any check runs.
func BenchmarkRepoLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Load(repoRoot, "./..."); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepoLint is the number CI cares about: a full run of every
// registered check over the whole repository, including the shared
// call-graph construction.
func BenchmarkRepoLint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := Load(repoRoot, "./...")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(prog, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChecksOnly re-runs all checks against one loaded program,
// measuring the marginal cost of analysis over a warm load (the facts
// cache makes repeat runs nearly free).
func BenchmarkChecksOnly(b *testing.B) {
	prog, err := Load(repoRoot, "./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(prog, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRepoLintBudget enforces the CI-friendliness claim: one cold
// full-repo run (load + all ten checks) must finish inside a bound
// generous enough for slow shared runners yet tight enough to catch an
// accidental fixpoint blow-up or a per-check re-load regression.
func TestRepoLintBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	const budget = 60 * time.Second
	start := time.Now()
	prog, err := Load(repoRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > budget {
		t.Errorf("full repo lint took %v, over the %v CI budget", elapsed, budget)
	}
	if prog.factBuilds > 1 {
		t.Errorf("call-graph facts built %d times in one run, want at most 1", prog.factBuilds)
	}
}
