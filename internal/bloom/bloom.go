// Package bloom implements the read/write signatures used by the
// interval orderer: k parallel Bloom filter arrays addressed by H3
// hash functions, following the paper's Table 1 configuration of
// 4 x 256-bit filters.
//
// H3 hashing computes each hash as the XOR of a set of random rows
// selected by the set bits of the key. The row matrices are derived
// from a deterministic PRNG so that all recorders in a machine (and
// across runs) use identical functions, keeping simulations
// reproducible.
package bloom

import "math/bits"

// Default geometry from the paper (Table 1).
const (
	// DefaultArrays is the number of parallel Bloom filters.
	DefaultArrays = 4
	// DefaultBits is the number of bits per filter.
	DefaultBits = 256
)

// h3 is one H3 hash function: 64 random rows, one per key bit; the
// hash of a key is the XOR of the rows whose key bit is set, reduced
// modulo the filter size.
type h3 struct {
	rows [64]uint32
}

func (h *h3) hash(key uint64, mod uint32) uint32 {
	var acc uint32
	for key != 0 {
		i := bits.TrailingZeros64(key)
		acc ^= h.rows[i]
		key &= key - 1
	}
	return acc % mod
}

// splitmix64 is the deterministic generator for H3 row matrices.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Signature is a multi-array Bloom filter over cache-line addresses.
type Signature struct {
	bits    [][]uint64 // one bitmap per array
	fns     []h3
	nbits   uint32
	ninsert int
}

// NewSignature returns a Signature with the given geometry. The seed
// selects the H3 hash family; use the same seed for signatures that
// must be comparable.
func NewSignature(arrays, bitsPerArray int, seed uint64) *Signature {
	if arrays <= 0 || bitsPerArray <= 0 || bitsPerArray%64 != 0 {
		panic("bloom: invalid signature geometry")
	}
	s := &Signature{
		bits:  make([][]uint64, arrays),
		fns:   make([]h3, arrays),
		nbits: uint32(bitsPerArray),
	}
	state := seed
	for a := range s.fns {
		s.bits[a] = make([]uint64, bitsPerArray/64)
		for r := range s.fns[a].rows {
			s.fns[a].rows[r] = uint32(splitmix64(&state))
		}
	}
	return s
}

// NewDefault returns a Signature with the paper's 4x256-bit geometry.
func NewDefault(seed uint64) *Signature {
	return NewSignature(DefaultArrays, DefaultBits, seed)
}

// Insert adds a line address to the signature.
//
//rrlint:hotpath
func (s *Signature) Insert(line uint64) {
	for a := range s.fns {
		b := s.fns[a].hash(line, s.nbits)
		s.bits[a][b/64] |= 1 << (b % 64)
	}
	s.ninsert++
}

// MayContain reports whether line may have been inserted. False
// positives are possible; false negatives are not.
//
//rrlint:hotpath
func (s *Signature) MayContain(line uint64) bool {
	for a := range s.fns {
		b := s.fns[a].hash(line, s.nbits)
		if s.bits[a][b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the signature.
func (s *Signature) Clear() {
	for a := range s.bits {
		for i := range s.bits[a] {
			s.bits[a][i] = 0
		}
	}
	s.ninsert = 0
}

// Empty reports whether nothing has been inserted since the last Clear.
func (s *Signature) Empty() bool { return s.ninsert == 0 }

// Inserted returns the number of Insert calls since the last Clear.
func (s *Signature) Inserted() int { return s.ninsert }

// SizeBits returns the total storage of the signature in bits.
func (s *Signature) SizeBits() int { return len(s.bits) * int(s.nbits) }
