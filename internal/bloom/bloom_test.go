package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	s := NewDefault(1)
	lines := make([]uint64, 100)
	rng := rand.New(rand.NewSource(42))
	for i := range lines {
		lines[i] = rng.Uint64() >> 5 // line addresses
		s.Insert(lines[i])
	}
	for _, l := range lines {
		if !s.MayContain(l) {
			t.Fatalf("false negative for %#x", l)
		}
	}
}

// Property: an inserted element is always contained (no false negatives),
// across random hash-family seeds.
func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(seed uint64, keys []uint64) bool {
		s := NewDefault(seed)
		for _, k := range keys {
			s.Insert(k)
		}
		for _, k := range keys {
			if !s.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySignatureContainsNothing(t *testing.T) {
	s := NewDefault(7)
	if !s.Empty() {
		t.Fatal("new signature should be empty")
	}
	for i := uint64(0); i < 1000; i++ {
		if s.MayContain(i) {
			t.Fatalf("empty signature claims to contain %d", i)
		}
	}
}

func TestClear(t *testing.T) {
	s := NewDefault(3)
	s.Insert(0x1234)
	if s.Empty() || s.Inserted() != 1 {
		t.Fatal("insert not counted")
	}
	s.Clear()
	if !s.Empty() || s.MayContain(0x1234) {
		t.Fatal("clear did not empty the signature")
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// With 64 inserted lines in a 4x256-bit signature, the false
	// positive rate should be low (well under 10%).
	s := NewDefault(11)
	rng := rand.New(rand.NewSource(7))
	inserted := make(map[uint64]bool)
	for len(inserted) < 64 {
		l := rng.Uint64() >> 5
		inserted[l] = true
		s.Insert(l)
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		l := rng.Uint64() >> 5
		if inserted[l] {
			continue
		}
		if s.MayContain(l) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.10 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a := NewDefault(99)
	b := NewDefault(99)
	a.Insert(0xdeadbeef)
	if !b.Empty() {
		t.Fatal("instances must be independent")
	}
	// Same seed -> same hash family: a line inserted into a must be
	// reported by an identically-built signature with the same inserts.
	b.Insert(0xdeadbeef)
	if !a.MayContain(0xdeadbeef) || !b.MayContain(0xdeadbeef) {
		t.Fatal("determinism violated")
	}
}

func TestGeometry(t *testing.T) {
	s := NewSignature(2, 128, 5)
	if s.SizeBits() != 256 {
		t.Fatalf("SizeBits = %d", s.SizeBits())
	}
	if NewDefault(0).SizeBits() != 1024 {
		t.Fatalf("default geometry should be 4x256 bits")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry should panic")
		}
	}()
	NewSignature(1, 100, 0) // not a multiple of 64
}

func TestZeroKey(t *testing.T) {
	// Key 0 hashes all arrays to bit 0; still round-trips.
	s := NewDefault(13)
	s.Insert(0)
	if !s.MayContain(0) {
		t.Fatal("zero key lost")
	}
}
