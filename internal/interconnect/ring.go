// Package interconnect models the on-chip network: a unidirectional
// slotted ring with a one-cycle hop delay (paper Table 1). Nodes are
// the cores' L1 controllers plus the shared L2 agent. The ring carries
// point-to-point messages (requests, data, acks) and circulating snoop
// messages that visit every node and return to their origin, which is
// how the snoopy protocol broadcasts and how every core gets to
// observe every coherence transaction.
//
//rrlint:deterministic
package interconnect

import "relaxreplay/internal/faultinject"

// Message is one ring packet. Every message occupies one ring slot
// regardless of payload (a 32-byte-wide ring moves a header or a line
// in one slot).
type Message struct {
	Src, Dst int  // node IDs
	Visit    bool // circulate: visit every node, return to Src
	Payload  any

	pos int // current slot position (node whose station the slot is at)
}

// Delivery describes a message arrival at a node during a Tick.
type Delivery struct {
	Node int
	Msg  Message
	// Final is true when the message leaves the ring here: either it
	// reached Dst, or (for Visit messages) it returned to Src. A Visit
	// message generates a non-final delivery at every intermediate
	// node so that caches can snoop it as it passes.
	Final bool
}

// Ring is a slotted unidirectional ring with one slot per node
// position. Messages advance one hop per Tick; a node injects a
// pending message when an empty slot passes its station. Everything is
// deterministic: ties are broken by node index.
type Ring struct {
	n       int
	slots   []*Message // slot i is currently at node i's station
	pending [][]Message

	// Steady-state scratch: the advance buffer swaps roles with slots
	// each Tick, deliveries are rebuilt in place, and message boxes that
	// leave the ring are recycled for later injections, so a busy ring
	// allocates nothing per cycle.
	scratch []*Message
	out     []Delivery
	free    []*Message

	// Faults, when non-nil, perturbs injection: ic.delay holds a
	// pending message at its station for a cycle, ic.drop discards one
	// outright (the protocol-level consequence — typically a stalled
	// coherence transaction — is the point of the exercise). A nil
	// injector leaves the ring bit-for-bit deterministic.
	Faults *faultinject.Injector

	// stats
	Injected  uint64
	Delivered uint64
	Hops      uint64 // slot advances carrying a message
	Dropped   uint64 // messages discarded by fault injection
	MaxQueue  int
}

// New returns a ring connecting n nodes.
func New(n int) *Ring {
	if n < 2 {
		panic("interconnect: ring needs at least 2 nodes")
	}
	return &Ring{
		n:       n,
		slots:   make([]*Message, n),
		scratch: make([]*Message, n),
		pending: make([][]Message, n),
	}
}

// Nodes returns the number of nodes on the ring.
func (r *Ring) Nodes() int { return r.n }

// QueueDepth returns the number of messages waiting for injection
// across all stations (the telemetry "ring queue depth" time series).
func (r *Ring) QueueDepth() int {
	n := 0
	for _, q := range r.pending {
		n += len(q)
	}
	return n
}

// InFlight returns the number of occupied ring slots.
func (r *Ring) InFlight() int {
	n := 0
	for _, s := range r.slots {
		if s != nil {
			n++
		}
	}
	return n
}

// Send enqueues a message for injection at its Src node. The pending
// queues and MaxQueue high-water mark are machine-global; under the
// sharded run loop the core phase must route sends through the
// coherence staging handoff, never here.
//
//rrlint:coordinator
func (r *Ring) Send(m Message) {
	if m.Src < 0 || m.Src >= r.n || m.Dst < 0 || m.Dst >= r.n {
		panic("interconnect: node id out of range")
	}
	r.pending[m.Src] = append(r.pending[m.Src], m)
	if q := len(r.pending[m.Src]); q > r.MaxQueue {
		r.MaxQueue = q
	}
}

// Busy reports whether any message is in flight or waiting.
func (r *Ring) Busy() bool {
	for _, s := range r.slots {
		if s != nil {
			return true
		}
	}
	for _, q := range r.pending {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Tick advances the ring one cycle and returns the deliveries that
// occurred, in deterministic order. A message injected on cycle T
// first arrives somewhere on cycle T+1 (one hop away at the earliest).
// The returned slice is valid only until the next call to Tick; copy
// the Delivery values out to hold them longer.
//
//rrlint:hotpath
func (r *Ring) Tick() []Delivery {
	out := r.out[:0]

	// Advance: slot at position i moves to position (i+1) mod n. The
	// scratch buffer trades places with slots each cycle.
	next := r.scratch
	clear(next)
	for i := r.n - 1; i >= 0; i-- {
		m := r.slots[i]
		if m == nil {
			continue
		}
		p := (i + 1) % r.n
		m.pos = p
		next[p] = m
		r.Hops++
	}
	r.scratch = r.slots
	r.slots = next

	// Deliver.
	for p := 0; p < r.n; p++ {
		m := r.slots[p]
		if m == nil {
			continue
		}
		switch {
		case m.Visit && p == m.Src:
			// Returned home: leaves the ring.
			out = append(out, Delivery{Node: p, Msg: *m, Final: true}) //rrlint:allow hotpath-alloc (amortized append into reused buffer)
			r.slots[p] = nil
			r.freeMsg(m)
			r.Delivered++
		case m.Visit:
			// Passing snoop: observed but stays on the ring.
			out = append(out, Delivery{Node: p, Msg: *m, Final: false}) //rrlint:allow hotpath-alloc (amortized append into reused buffer)
		case p == m.Dst:
			out = append(out, Delivery{Node: p, Msg: *m, Final: true}) //rrlint:allow hotpath-alloc (amortized append into reused buffer)
			r.slots[p] = nil
			r.freeMsg(m)
			r.Delivered++
		}
	}

	// Inject into freed slots.
	for p := 0; p < r.n; p++ {
		if r.slots[p] != nil || len(r.pending[p]) == 0 {
			continue
		}
		if r.Faults.Fire(faultinject.ICDelay) {
			continue // station stalls this cycle; message stays queued
		}
		m := r.pending[p][0]
		copy(r.pending[p], r.pending[p][1:])
		r.pending[p] = r.pending[p][:len(r.pending[p])-1]
		if r.Faults.Fire(faultinject.ICDrop) {
			r.Dropped++
			continue // message vanishes between station and slot
		}
		box := r.takeMsg()
		*box = m
		box.pos = p
		if box.Visit && box.Dst != box.Src {
			box.Dst = box.Src
		}
		r.slots[p] = box
		r.Injected++
	}
	r.out = out
	return out
}

// takeMsg returns a message box from the freelist, or a new one.
//
//rrlint:hotpath
func (r *Ring) takeMsg() *Message {
	if n := len(r.free); n > 0 {
		m := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return m
	}
	return new(Message) //rrlint:allow hotpath-alloc (freelist miss)
}

// freeMsg recycles a message box that left the ring. The Delivery the
// caller sees holds a value copy, so dropping the box here is safe.
//
//rrlint:hotpath
func (r *Ring) freeMsg(m *Message) {
	m.Payload = nil // release the protocol payload promptly
	r.free = append(r.free, m)
}
