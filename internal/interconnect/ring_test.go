package interconnect

import (
	"testing"
	"testing/quick"
)

// run ticks the ring until idle (or the bound is hit), collecting deliveries.
func run(t *testing.T, r *Ring, bound int) []Delivery {
	t.Helper()
	var all []Delivery
	for i := 0; i < bound; i++ {
		all = append(all, r.Tick()...)
		if !r.Busy() {
			return all
		}
	}
	t.Fatalf("ring still busy after %d ticks", bound)
	return nil
}

func TestPointToPointLatency(t *testing.T) {
	r := New(4)
	r.Send(Message{Src: 0, Dst: 2, Payload: "x"})
	// Injected on tick 1 (slot free), arrives after 2 hops: tick 3.
	var arrival int
	for tick := 1; tick <= 10; tick++ {
		ds := r.Tick()
		if len(ds) > 0 {
			arrival = tick
			if !ds[0].Final || ds[0].Node != 2 || ds[0].Msg.Payload != "x" {
				t.Fatalf("bad delivery %+v", ds[0])
			}
			break
		}
	}
	if arrival != 3 {
		t.Fatalf("arrival tick = %d, want 3 (inject + 2 hops)", arrival)
	}
}

func TestVisitMessageSeenByAllAndReturns(t *testing.T) {
	const n = 5
	r := New(n)
	r.Send(Message{Src: 1, Dst: 1, Visit: true, Payload: 7})
	ds := run(t, r, 50)
	if len(ds) != n {
		t.Fatalf("deliveries = %d, want %d", len(ds), n)
	}
	seen := map[int]bool{}
	for i, d := range ds {
		seen[d.Node] = true
		final := i == len(ds)-1
		if d.Final != final {
			t.Fatalf("delivery %d Final=%v", i, d.Final)
		}
	}
	for node := 0; node < n; node++ {
		if !seen[node] {
			t.Fatalf("node %d never saw the snoop", node)
		}
	}
	if ds[len(ds)-1].Node != 1 {
		t.Fatalf("snoop returned to %d, want 1", ds[len(ds)-1].Node)
	}
}

func TestNoOvertaking(t *testing.T) {
	// Two messages injected at the same node in order must arrive in order.
	r := New(6)
	r.Send(Message{Src: 0, Dst: 3, Payload: 1})
	r.Send(Message{Src: 0, Dst: 3, Payload: 2})
	ds := run(t, r, 50)
	if len(ds) != 2 || ds[0].Msg.Payload != 1 || ds[1].Msg.Payload != 2 {
		t.Fatalf("messages reordered: %+v", ds)
	}
}

func TestInjectionBlocksWhenSlotBusy(t *testing.T) {
	// A message circling past a node delays that node's injection.
	r := New(3)
	r.Send(Message{Src: 0, Dst: 0, Visit: true, Payload: "snoop"})
	r.Tick() // snoop injected at 0
	r.Send(Message{Src: 1, Dst: 2, Payload: "p2p"})
	// Tick: snoop moves to node 1 and occupies its slot, so node 1
	// cannot inject this cycle.
	ds := r.Tick()
	if len(ds) != 1 || ds[0].Node != 1 || ds[0].Final {
		t.Fatalf("expected passing snoop at node 1, got %+v", ds)
	}
	if r.Injected != 1 {
		t.Fatalf("p2p should still be queued, injected=%d", r.Injected)
	}
	run(t, r, 20)
	if r.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", r.Delivered)
	}
}

func TestManyMessagesAllDelivered(t *testing.T) {
	const n = 9
	r := New(n)
	sent := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			r.Send(Message{Src: src, Dst: dst, Payload: src*100 + dst})
			sent++
		}
	}
	ds := run(t, r, 10000)
	finals := 0
	for _, d := range ds {
		if d.Final {
			finals++
			if d.Msg.Payload.(int)%100 != d.Node {
				t.Fatalf("message delivered to wrong node: %+v", d)
			}
		}
	}
	if finals != sent {
		t.Fatalf("finals = %d, want %d", finals, sent)
	}
}

// Property: for any batch of point-to-point messages, every message is
// delivered exactly once, at its destination.
func TestDeliveryProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		const n = 8
		r := New(n)
		want := 0
		for i, p := range pairs {
			if i >= 64 {
				break
			}
			src, dst := int(p)%n, int(p/8)%n
			if src == dst {
				continue
			}
			r.Send(Message{Src: src, Dst: dst, Payload: i})
			want++
		}
		got := 0
		for i := 0; i < 5000 && r.Busy(); i++ {
			for _, d := range r.Tick() {
				if d.Final {
					got++
					if d.Node != d.Msg.Dst {
						return false
					}
				}
			}
		}
		return got == want && !r.Busy()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() []Delivery {
		r := New(5)
		r.Send(Message{Src: 0, Dst: 0, Visit: true, Payload: 1})
		r.Send(Message{Src: 2, Dst: 4, Payload: 2})
		r.Send(Message{Src: 3, Dst: 1, Payload: 3})
		var all []Delivery
		for i := 0; i < 30; i++ {
			all = append(all, r.Tick()...)
		}
		return all
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestBadArgsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad node id")
		}
	}()
	New(3).Send(Message{Src: 0, Dst: 9})
}

func TestTooSmallRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1)
}
