package rrnet

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStreamReassembly throws arbitrary bytes at the connection-input
// path: preamble check, frame resync, per-message decoding, and the
// server-side session reassembly state machine (cumulative prefix,
// bounded out-of-order buffer, dedup). The invariants under attack:
//
//   - no panic, no unbounded allocation, no unbounded loop for any input
//   - contig never goes backward and never jumps a gap
//   - the reorder buffer never exceeds its bound
//
// The same reassembly rules run inside Server.applyChunk; the fuzz
// harness mirrors them without a journal so iterations stay cheap.
func FuzzStreamReassembly(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	const window = 16
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		if err := readPreamble(r); err != nil {
			return // not a session stream; nothing to reassemble
		}
		fr := newFrameReader(r, 1<<20)
		type state struct {
			contig  uint64
			pending map[uint64][]byte
			bytes   uint64
		}
		sessions := make(map[uint64]*state)
		for {
			tp, payload, err := fr.next()
			if err != nil {
				break
			}
			switch tp {
			case MsgHello:
				if m, ok := decodeHello(payload); ok && sessions[m.Session] == nil {
					sessions[m.Session] = &state{pending: make(map[uint64][]byte)}
				}
			case MsgChunk:
				m, ok := decodeChunk(payload)
				if !ok {
					continue
				}
				st := sessions[m.Session]
				if st == nil {
					continue
				}
				before := st.contig
				switch {
				case m.Seq < st.contig:
					// duplicate: ignored
				case m.Seq == st.contig:
					st.bytes += uint64(len(m.Data))
					st.contig++
					for {
						next, ok := st.pending[st.contig]
						if !ok {
							break
						}
						delete(st.pending, st.contig)
						st.bytes += uint64(len(next))
						st.contig++
					}
				default:
					if m.Seq-st.contig <= window && len(st.pending) < window {
						st.pending[m.Seq] = append([]byte(nil), m.Data...)
					}
				}
				if st.contig < before {
					t.Fatalf("contig went backward: %d -> %d", before, st.contig)
				}
				if len(st.pending) > window {
					t.Fatalf("reorder buffer grew to %d (bound %d)", len(st.pending), window)
				}
			case MsgCommit:
				if m, ok := decodeCommit(payload); ok {
					if len(m.Dropped) > MaxDroppedReport {
						t.Fatalf("dropped list %d exceeds clamp %d", len(m.Dropped), MaxDroppedReport)
					}
				}
			case MsgHelloAck, MsgAck, MsgCommitAck, MsgHeartbeat, MsgHeartbeatAck, MsgError:
				// decode them too: parsers must be total
				decodeHelloAck(payload)
				decodeAck(payload)
				decodeCommitAck(payload)
				decodeNonce(payload)
				decodeError(payload)
			}
		}
	})
}

// fuzzSeeds builds the committed seed shapes: a valid session stream,
// a truncated one, one with a duplicated chunk, and two interleaved
// sessions.
func fuzzSeeds() [][]byte {
	preamble := func() []byte {
		var b [6]byte
		copy(b[:4], wireMagic[:])
		binary.LittleEndian.PutUint16(b[4:], ProtoVersion)
		return b[:]
	}

	valid := preamble()
	valid = appendFrame(valid, MsgHello, encodeHello(helloMsg{Proto: ProtoVersion, Session: 1, Tenant: "seed"}))
	valid = appendFrame(valid, MsgChunk, encodeChunk(chunkMsg{Session: 1, Seq: 0, Data: []byte("alpha")}))
	valid = appendFrame(valid, MsgChunk, encodeChunk(chunkMsg{Session: 1, Seq: 1, Data: []byte("beta")}))
	valid = appendFrame(valid, MsgCommit, encodeCommit(commitMsg{Session: 1, Chunks: 2, LogLen: 9, LogCRC: 0xDEAD}))

	truncated := append([]byte(nil), valid[:len(valid)-7]...)

	duplicated := preamble()
	duplicated = appendFrame(duplicated, MsgHello, encodeHello(helloMsg{Proto: ProtoVersion, Session: 2}))
	chunk := appendFrame(nil, MsgChunk, encodeChunk(chunkMsg{Session: 2, Seq: 0, Data: []byte("dup")}))
	duplicated = append(duplicated, chunk...)
	duplicated = append(duplicated, chunk...) // exact re-delivery

	interleaved := preamble()
	interleaved = appendFrame(interleaved, MsgHello, encodeHello(helloMsg{Proto: ProtoVersion, Session: 3}))
	interleaved = appendFrame(interleaved, MsgHello, encodeHello(helloMsg{Proto: ProtoVersion, Session: 4}))
	interleaved = appendFrame(interleaved, MsgChunk, encodeChunk(chunkMsg{Session: 3, Seq: 0, Data: []byte("a3")}))
	interleaved = appendFrame(interleaved, MsgChunk, encodeChunk(chunkMsg{Session: 4, Seq: 1, Data: []byte("ooo")})) // out of order
	interleaved = appendFrame(interleaved, MsgChunk, encodeChunk(chunkMsg{Session: 4, Seq: 0, Data: []byte("a4")}))

	return [][]byte{valid, truncated, duplicated, interleaved}
}

// TestWriteFuzzCorpus materializes the seeds as committed corpus
// files when RRNET_WRITE_CORPUS=1 (one-time generation; the files are
// checked in so CI's fuzz-smoke starts from real protocol shapes).
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("RRNET_WRITE_CORPUS") == "" {
		t.Skip("set RRNET_WRITE_CORPUS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzStreamReassembly")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	names := []string{"seed-valid", "seed-truncated", "seed-duplicated", "seed-interleaved"}
	for i, seed := range fuzzSeeds() {
		body := "go test fuzz v1\n[]byte(" + quoteBytes(seed) + ")"
		if err := os.WriteFile(filepath.Join(dir, names[i]), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func quoteBytes(b []byte) string {
	const hex = "0123456789abcdef"
	out := make([]byte, 0, len(b)*4+2)
	out = append(out, '"')
	for _, c := range b {
		out = append(out, '\\', 'x', hex[c>>4], hex[c&0xf])
	}
	return string(append(out, '"'))
}
