// Package rrnet is the networked record-and-replay transport: the
// wire protocol, client, server and crash-safe journal behind the
// cmd/rrd (recorder agent) and cmd/rrproc (central processor)
// daemons. The relationship is 1:N — one rrproc multiplexes many
// concurrent rrd sessions into a single append-only journal.
//
// The design is robustness-first. Everything on the wire is a
// CRC32C-checked frame in the same sync/type/length/checksum layout
// as log format v2/v3 (internal/replaylog), so a damaged stream is
// resynchronized, never trusted; the client retries with capped
// exponential backoff plus deterministic jitter and resumes a session
// after reconnect from the server's cumulative ack; the send queue is
// bounded with an explicit slow-consumer policy (block, drop with a
// degradation record, or spill to disk); the server deduplicates
// re-delivered chunks so retry is idempotent; and the journal fsyncs
// at segment boundaries and recovers after a crash with the same
// salvage-by-resync discipline as DecodeRobust. See DESIGN.md
// "Networked streaming: rrd, rrproc and the journal".
package rrnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire preamble: sent by the client immediately after connecting.
//
//	preamble := magic "RRNT" | version u16 (LE)
//
// Everything after the preamble — in both directions — is a frame in
// the replaylog v2 layout:
//
//	frame := sync 0xF5 'R' 'F' '2'
//	       | type u8 | length u32 (LE, payload bytes)
//	       | payload
//	       | crc32c u32 (LE, over type|length|payload)
//
// Message payloads (all integers little-endian, strings u16-length-
// prefixed):
//
//	hello        (0x20): proto u16 | session u64 | resume u8 | tenant str
//	hello-ack    (0x21): status u8 | contig u64 | durable u64 | reason str
//	chunk        (0x22): session u64 | seq u64 | data...
//	ack          (0x23): session u64 | contig u64 | durable u64
//	commit       (0x24): session u64 | chunks u64 | loglen u64 | logcrc u32
//	                     | ndropped u32 | dropped seq u64 each
//	commit-ack   (0x25): session u64 | status u8 | missing u64 | reason str
//	heartbeat    (0x26): nonce u64
//	heartbeat-ack(0x27): nonce u64
//	error        (0x28): code u8 | message str
//
// contig is the cumulative ack: the number of chunks received
// contiguously from seq 0, i.e. the next seq the server needs. A
// client that reconnects resumes sending at contig; the server
// discards (but still acks) any chunk below it, which is what makes
// re-delivery after an ambiguous failure idempotent.
//
// durable is the crash-safe prefix: chunks below it have reached the
// journal AND been covered by an fsync'd segment boundary. The client
// frees buffered chunks only below durable — contig alone is not
// permission to forget, because a crashed-and-restarted rrproc
// recovers to its last durable point and may legitimately report a
// contig lower than one it acked before the crash. durable is
// monotonic across reconnects; contig may rewind at a handshake.

var wireMagic = [4]byte{'R', 'R', 'N', 'T'}

// ProtoVersion is the wire protocol version in the preamble and hello.
const ProtoVersion = 1

// wireSync mirrors the replaylog v2/v3 frame sync word: the wire
// reuses the exact on-disk framing so one CRC/resync implementation
// (and one set of fuzz-hardened habits) covers both.
var wireSync = [4]byte{0xF5, 'R', 'F', '2'}

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MsgType discriminates wire frames. The range starts at 0x20, clear
// of the replaylog frame types (1..8), so a wire frame can never be
// mistaken for a log frame by a tool scanning the wrong stream.
type MsgType uint8

const (
	MsgHello        MsgType = 0x20
	MsgHelloAck     MsgType = 0x21
	MsgChunk        MsgType = 0x22
	MsgAck          MsgType = 0x23
	MsgCommit       MsgType = 0x24
	MsgCommitAck    MsgType = 0x25
	MsgHeartbeat    MsgType = 0x26
	MsgHeartbeatAck MsgType = 0x27
	MsgError        MsgType = 0x28
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgChunk:
		return "chunk"
	case MsgAck:
		return "ack"
	case MsgCommit:
		return "commit"
	case MsgCommitAck:
		return "commit-ack"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgHeartbeatAck:
		return "heartbeat-ack"
	case MsgError:
		return "error"
	}
	return fmt.Sprintf("msg(0x%02x)", uint8(t))
}

// Hello-ack / commit-ack status codes.
const (
	StatusOK       = 0 // accepted / committed with every chunk accounted for
	StatusDegraded = 1 // committed, but chunks are missing (reported)
	StatusReject   = 2 // refused (reason attached)
)

// Decode limits: every length or count field read off the wire is
// clamped before any allocation, exactly like the log decoder's
// hostile-header discipline.
const (
	// MaxWirePayload bounds one frame payload (16 MiB).
	MaxWirePayload = 1 << 24
	// MaxTenantLen bounds the tenant string.
	MaxTenantLen = 1 << 10
	// MaxReasonLen bounds ack/error reason strings.
	MaxReasonLen = 1 << 12
	// MaxDroppedReport bounds the dropped-seq list a commit may carry;
	// a client that dropped more reports the count but lists only the
	// first MaxDroppedReport.
	MaxDroppedReport = 1 << 12
)

// Typed wire errors.
var (
	// ErrBadPreamble reports a connection that did not open with the
	// RRNT magic and a supported version.
	ErrBadPreamble = errors.New("rrnet: bad connection preamble")
	// ErrFrameTooLarge reports a frame whose length field exceeds
	// MaxWirePayload; the stream cannot be trusted past it.
	ErrFrameTooLarge = errors.New("rrnet: wire frame too large")
	// ErrResyncBudget reports a stream that needed more garbage skipped
	// than the reader's budget allows.
	ErrResyncBudget = errors.New("rrnet: resync budget exhausted")
)

// appendFrame appends one checksummed frame to dst and returns it.
// The single-buffer shape lets the caller hand one complete frame to
// one Write call, which is what the fault transport (WrapFaultConn)
// keys on: one Write == one frame.
func appendFrame(dst []byte, t MsgType, payload []byte) []byte {
	var hdr [9]byte
	copy(hdr[:4], wireSync[:])
	hdr[4] = uint8(t)
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[4:])
	crc = crc32.Update(crc, castagnoli, payload)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return append(dst, tail[:]...)
}

// writeFrame writes one frame to w as a single Write call.
func writeFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxWirePayload {
		return fmt.Errorf("%w: %s frame payload is %d bytes (limit %d)",
			ErrFrameTooLarge, t, len(payload), MaxWirePayload)
	}
	buf := appendFrame(make([]byte, 0, 13+len(payload)), t, payload)
	_, err := w.Write(buf)
	return err
}

// frameReader reads frames from a (possibly hostile) byte stream,
// resynchronizing past garbage and CRC failures the way the log
// decoder does. It never allocates more than MaxWirePayload per frame
// regardless of what the length field claims.
type frameReader struct {
	r *bufio.Reader

	// skipBudget bounds the total garbage bytes tolerated before the
	// stream is declared unusable (<=0: no budget, for trusted pipes).
	skipBudget int64

	// Skipped and Dropped count resynced bytes and CRC-failed frames.
	Skipped int64
	Dropped int
}

func newFrameReader(r io.Reader, skipBudget int64) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, 64<<10), skipBudget: skipBudget}
}

// next returns the next intact frame, skipping garbage and corrupt
// frames. io.EOF means a clean end between frames; io.ErrUnexpectedEOF
// a tear inside one.
func (fr *frameReader) next() (MsgType, []byte, error) {
	for {
		// Hunt for the sync word byte by byte.
		b, err := fr.r.ReadByte()
		if err != nil {
			return 0, nil, err
		}
		if b != wireSync[0] {
			if err := fr.skip(1); err != nil {
				return 0, nil, err
			}
			continue
		}
		rest, err := fr.r.Peek(3)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
		if rest[0] != wireSync[1] || rest[1] != wireSync[2] || rest[2] != wireSync[3] {
			if err := fr.skip(1); err != nil {
				return 0, nil, err
			}
			continue
		}
		if _, err := fr.r.Discard(3); err != nil {
			return 0, nil, err
		}
		var hdr [5]byte // type u8 | length u32
		if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
		length := binary.LittleEndian.Uint32(hdr[1:])
		if length > MaxWirePayload {
			// The length field cannot be trusted; everything consumed
			// past the sync word is garbage. Resync from here.
			if err := fr.skip(int64(len(hdr)) + 3); err != nil {
				return 0, nil, err
			}
			continue
		}
		body := make([]byte, length+4)
		if _, err := io.ReadFull(fr.r, body); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
		crc := crc32.Update(0, castagnoli, hdr[:])
		crc = crc32.Update(crc, castagnoli, body[:length])
		if crc != binary.LittleEndian.Uint32(body[length:]) {
			fr.Dropped++
			if err := fr.skip(int64(len(hdr)) + 3 + int64(len(body))); err != nil {
				return 0, nil, err
			}
			continue
		}
		return MsgType(hdr[0]), body[:length], nil
	}
}

// skip charges n bytes against the resync budget.
func (fr *frameReader) skip(n int64) error {
	fr.Skipped += n
	if fr.skipBudget > 0 && fr.Skipped > fr.skipBudget {
		return fmt.Errorf("%w: skipped %d bytes", ErrResyncBudget, fr.Skipped)
	}
	return nil
}

// writePreamble / readPreamble frame the connection open.
func writePreamble(w io.Writer) error {
	var b [6]byte
	copy(b[:4], wireMagic[:])
	binary.LittleEndian.PutUint16(b[4:], ProtoVersion)
	_, err := w.Write(b[:])
	return err
}

func readPreamble(r io.Reader) error {
	var b [6]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPreamble, err)
	}
	if [4]byte(b[:4]) != wireMagic {
		return fmt.Errorf("%w: magic %q", ErrBadPreamble, b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != ProtoVersion {
		return fmt.Errorf("%w: version %d (want %d)", ErrBadPreamble, v, ProtoVersion)
	}
	return nil
}

// payload builders / parsers. The byteScanner mirrors replaylog's
// bounds-checked cursor: reads past the end set short, never panic.

type wirePayload struct{ bytes.Buffer }

func (p *wirePayload) u8(v uint8) { p.WriteByte(v) }
func (p *wirePayload) u16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	p.Write(b[:])
}
func (p *wirePayload) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	p.Write(b[:])
}
func (p *wirePayload) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.Write(b[:])
}
func (p *wirePayload) str(s string) {
	p.u16(uint16(len(s)))
	p.WriteString(s)
}

type byteScanner struct {
	data  []byte
	pos   int
	short bool
}

func (b *byteScanner) remaining() int { return len(b.data) - b.pos }

func (b *byteScanner) take(n int) []byte {
	if n < 0 || b.remaining() < n {
		b.short = true
		b.pos = len(b.data)
		return nil
	}
	out := b.data[b.pos : b.pos+n]
	b.pos += n
	return out
}

func (b *byteScanner) u8() uint8 {
	s := b.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (b *byteScanner) u16() uint16 {
	s := b.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (b *byteScanner) u32() uint32 {
	s := b.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (b *byteScanner) u64() uint64 {
	s := b.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

// str reads a u16-length-prefixed string clamped to limit.
func (b *byteScanner) str(limit int) string {
	n := int(b.u16())
	if n > limit {
		b.short = true
		b.pos = len(b.data)
		return ""
	}
	return string(b.take(n))
}

// Message structs and their codecs.

type helloMsg struct {
	Proto   uint16
	Session uint64
	Resume  bool
	Tenant  string
}

func encodeHello(m helloMsg) []byte {
	var p wirePayload
	p.u16(m.Proto)
	p.u64(m.Session)
	r := uint8(0)
	if m.Resume {
		r = 1
	}
	p.u8(r)
	p.str(m.Tenant)
	return p.Bytes()
}

func decodeHello(b []byte) (helloMsg, bool) {
	s := &byteScanner{data: b}
	m := helloMsg{Proto: s.u16(), Session: s.u64(), Resume: s.u8() != 0, Tenant: s.str(MaxTenantLen)}
	return m, !s.short
}

type helloAckMsg struct {
	Status  uint8
	Contig  uint64
	Durable uint64
	Reason  string
}

func encodeHelloAck(m helloAckMsg) []byte {
	var p wirePayload
	p.u8(m.Status)
	p.u64(m.Contig)
	p.u64(m.Durable)
	p.str(m.Reason)
	return p.Bytes()
}

func decodeHelloAck(b []byte) (helloAckMsg, bool) {
	s := &byteScanner{data: b}
	m := helloAckMsg{Status: s.u8(), Contig: s.u64(), Durable: s.u64(), Reason: s.str(MaxReasonLen)}
	return m, !s.short
}

type chunkMsg struct {
	Session uint64
	Seq     uint64
	Data    []byte
}

func encodeChunk(m chunkMsg) []byte {
	var p wirePayload
	p.Grow(16 + len(m.Data))
	p.u64(m.Session)
	p.u64(m.Seq)
	p.Write(m.Data)
	return p.Bytes()
}

func decodeChunk(b []byte) (chunkMsg, bool) {
	s := &byteScanner{data: b}
	m := chunkMsg{Session: s.u64(), Seq: s.u64()}
	if s.short {
		return m, false
	}
	m.Data = s.take(s.remaining())
	return m, !s.short
}

type ackMsg struct {
	Session uint64
	Contig  uint64
	Durable uint64
}

func encodeAck(m ackMsg) []byte {
	var p wirePayload
	p.u64(m.Session)
	p.u64(m.Contig)
	p.u64(m.Durable)
	return p.Bytes()
}

func decodeAck(b []byte) (ackMsg, bool) {
	s := &byteScanner{data: b}
	m := ackMsg{Session: s.u64(), Contig: s.u64(), Durable: s.u64()}
	return m, !s.short
}

type commitMsg struct {
	Session uint64
	Chunks  uint64 // chunks the client produced (including dropped)
	LogLen  uint64 // total log bytes produced
	LogCRC  uint32 // CRC32C over the full produced log bytes
	Dropped []uint64
	NDrop   uint64 // true dropped count (may exceed len(Dropped))
}

func encodeCommit(m commitMsg) []byte {
	var p wirePayload
	p.u64(m.Session)
	p.u64(m.Chunks)
	p.u64(m.LogLen)
	p.u32(m.LogCRC)
	p.u64(m.NDrop)
	list := m.Dropped
	if len(list) > MaxDroppedReport {
		list = list[:MaxDroppedReport]
	}
	p.u32(uint32(len(list)))
	for _, d := range list {
		p.u64(d)
	}
	return p.Bytes()
}

func decodeCommit(b []byte) (commitMsg, bool) {
	s := &byteScanner{data: b}
	m := commitMsg{Session: s.u64(), Chunks: s.u64(), LogLen: s.u64(), LogCRC: s.u32(), NDrop: s.u64()}
	n := s.u32()
	if s.short || n > MaxDroppedReport || int(n)*8 > s.remaining() {
		return m, false
	}
	for i := uint32(0); i < n; i++ {
		m.Dropped = append(m.Dropped, s.u64())
	}
	return m, !s.short
}

type commitAckMsg struct {
	Session uint64
	Status  uint8
	Missing uint64
	Reason  string
}

func encodeCommitAck(m commitAckMsg) []byte {
	var p wirePayload
	p.u64(m.Session)
	p.u8(m.Status)
	p.u64(m.Missing)
	p.str(m.Reason)
	return p.Bytes()
}

func decodeCommitAck(b []byte) (commitAckMsg, bool) {
	s := &byteScanner{data: b}
	m := commitAckMsg{Session: s.u64(), Status: s.u8(), Missing: s.u64(), Reason: s.str(MaxReasonLen)}
	return m, !s.short
}

func encodeNonce(nonce uint64) []byte {
	var p wirePayload
	p.u64(nonce)
	return p.Bytes()
}

func decodeNonce(b []byte) (uint64, bool) {
	s := &byteScanner{data: b}
	n := s.u64()
	return n, !s.short
}

type errorMsg struct {
	Code    uint8
	Message string
}

func encodeError(m errorMsg) []byte {
	var p wirePayload
	p.u8(m.Code)
	p.str(m.Message)
	return p.Bytes()
}

func decodeError(b []byte) (errorMsg, bool) {
	s := &byteScanner{data: b}
	m := errorMsg{Code: s.u8(), Message: s.str(MaxReasonLen)}
	return m, !s.short
}
