package rrnet

import (
	"errors"
	"fmt"
	"net"
	"time"

	"relaxreplay/internal/faultinject"
)

// FaultConn is the chaos transport: a net.Conn wrapper that consults
// the injector's net.* points once per Write. Both the client and the
// server write exactly one wire frame per Write call (appendFrame
// builds the whole frame into one buffer), so each consultation
// decides the fate of one frame:
//
//   - net.delay:        the frame is delivered late (1–20 ms sleep)
//   - net.drop:         the frame silently vanishes (Write reports success)
//   - net.reset:        the connection is closed; Write errors
//   - net.partial:      a prefix of the frame is delivered, then the
//     connection dies — the receiver sees a torn frame
//   - net.reorder-conn: the frame is held back and delivered after the
//     next one (an adjacent swap)
//
// Faults that fake success (drop) are the nasty ones: no error
// surfaces anywhere, and only the ack-stall reconnect machinery can
// recover the lost frame. That is precisely what the chaos grid needs
// to prove.
type FaultConn struct {
	net.Conn
	inj  *faultinject.Injector
	held []byte // frame held by net.reorder-conn, delivered after the next
}

// ErrInjectedReset is the error surfaced by net.reset / net.partial.
var ErrInjectedReset = errors.New("rrnet: injected connection reset")

// WrapFaultConn wraps nc so the injector's net.* points attack its
// write path. A nil injector returns nc unchanged.
func WrapFaultConn(nc net.Conn, inj *faultinject.Injector) net.Conn {
	if inj == nil {
		return nc
	}
	return &FaultConn{Conn: nc, inj: inj}
}

// Write decides one frame's fate. Not safe for concurrent Writes
// (neither endpoint issues them).
func (f *FaultConn) Write(b []byte) (int, error) {
	if f.inj.Fire(faultinject.NetDelay) {
		time.Sleep(time.Duration(1+f.inj.Rand(faultinject.NetDelay, 20)) * time.Millisecond)
	}
	if f.inj.Fire(faultinject.NetDrop) {
		return len(b), nil // vanished in transit; the sender cannot tell
	}
	if f.inj.Fire(faultinject.NetReset) {
		closeConn(f.Conn)
		return 0, ErrInjectedReset
	}
	if f.inj.Fire(faultinject.NetPartial) {
		cut := 1 + int(f.inj.Rand(faultinject.NetPartial, uint64(max(len(b)-1, 1))))
		if cut > len(b) {
			cut = len(b)
		}
		n, _ := f.Conn.Write(b[:cut])
		closeConn(f.Conn)
		return n, fmt.Errorf("%w: died after %d of %d bytes", ErrInjectedReset, cut, len(b))
	}
	if f.held == nil && f.inj.Fire(faultinject.NetReorder) {
		f.held = append([]byte(nil), b...)
		return len(b), nil // delivered out of order, after the next frame
	}
	if f.held != nil {
		held := f.held
		f.held = nil
		if n, err := f.Conn.Write(b); err != nil {
			return n, err
		}
		if _, err := f.Conn.Write(held); err != nil {
			return len(b), err
		}
		return len(b), nil
	}
	return f.Conn.Write(b)
}
