package rrnet

import (
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"sync"
	"time"

	"relaxreplay/internal/telemetry"
)

// Client dials rrproc and opens streaming sessions. One Client can
// open many sessions (sequentially or from separate goroutines); each
// SessionWriter owns its own connection so a stalled session never
// head-of-line-blocks another.
type Client struct {
	opts ClientOptions

	// Dial replaces the network dialer (test seam: wrap the conn in
	// WrapFaultConn, or return one end of net.Pipe).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)

	mChunks, mBytes, mRetries, mReconnects *telemetry.Counter
	mDropped, mSpilled, mHeartbeats        *telemetry.Counter
	gInflight                              *telemetry.Gauge
}

// NewClient validates opts and builds a client. reg may be nil
// (metrics become no-ops).
func NewClient(opts ClientOptions, reg *telemetry.Registry) (*Client, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	return &Client{
		opts: opts,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		},
		mChunks:     reg.Counter("rrnet.client.chunks"),
		mBytes:      reg.Counter("rrnet.client.bytes"),
		mRetries:    reg.Counter("rrnet.client.retries"),
		mReconnects: reg.Counter("rrnet.client.reconnects"),
		mDropped:    reg.Counter("rrnet.client.chunks-dropped"),
		mSpilled:    reg.Counter("rrnet.client.chunks-spilled"),
		mHeartbeats: reg.Counter("rrnet.client.heartbeats"),
		gInflight:   reg.Gauge("rrnet.client.inflight"),
	}, nil
}

// Typed session-failure errors.
var (
	// ErrRetriesExhausted reports a session abandoned after MaxRetries
	// consecutive failures with no ack progress.
	ErrRetriesExhausted = errors.New("rrnet: retries exhausted")
	// ErrRejected reports a session the server refused (hello or
	// commit rejected); Reason carries the server's explanation.
	ErrRejected = errors.New("rrnet: session rejected by server")
	// ErrWriterClosed reports a Write after Close.
	ErrWriterClosed = errors.New("rrnet: session writer is closed")
)

// SessionResult summarizes a completed session.
type SessionResult struct {
	Status  uint8 // StatusOK, StatusDegraded or StatusReject
	Chunks  uint64
	Bytes   uint64
	Dropped uint64 // chunks shed by the Drop policy (tombstoned)
	Spilled uint64 // chunks that transited the spill file
	Retries int    // reconnect attempts over the session's lifetime
	Missing uint64 // chunks the server never received (== Dropped when healthy)
	Reason  string // server-side note on non-OK status
}

// entry is one sealed chunk awaiting cumulative ack. Exactly one of
// {data, tomb, spilled} describes the payload's location.
type entry struct {
	seq      uint64
	data     []byte // in-memory payload (nil when tomb or spilled)
	tomb     bool   // payload shed by the Drop policy: sent as 0 bytes
	spilled  bool   // payload lives in the spill file
	spillOff int64
	spillLen int
}

// SessionWriter streams one recording session to rrproc. It is an
// io.WriteCloser, so the natural use is handing it to WriteLogV3 and
// letting the encoder stream straight onto the wire. Not safe for
// concurrent Writes.
type SessionWriter struct {
	c    *Client
	opts ClientOptions
	id   uint64

	buf     []byte  // accumulating unsealed chunk
	nextSeq uint64  // next seq to assign
	entries []entry // sealed chunks not yet durable (seq-ordered, all >= durable)
	contig  uint64  // server's cumulative ack; may rewind at a handshake
	durable uint64  // server's fsync'd prefix; monotonic, gates freeing
	sentTo  uint64  // next seq to (re)send on the current connection

	logLen uint64 // total bytes produced (including shed payloads)
	logCRC uint32 // CRC32C over every byte produced

	dropped  []uint64 // seqs shed by Drop (first MaxDroppedReport kept)
	nDropped uint64
	nSpilled uint64

	spill *os.File

	conn       *clientConn
	attempts   int       // consecutive failures since last ack progress
	retries    int
	nextDial   time.Time // earliest next tryReconnect dial (backoff without sleeping)
	lastSend   time.Time
	flushReqAt uint64 // contig level a durability nudge was last sent at

	prng   uint64
	failed error
	closed bool
	res    SessionResult
}

// OpenSession opens session id, connecting eagerly (with the full
// retry/backoff machinery, so starting rrd before rrproc is fine).
func (c *Client) OpenSession(id uint64) (*SessionWriter, error) {
	sw := &SessionWriter{c: c, opts: c.opts, id: id, prng: c.opts.Seed}
	if sw.prng == 0 {
		sw.prng = id | 1
	}
	if c.opts.Policy == Spill {
		f, err := os.CreateTemp(c.opts.SpillDir, fmt.Sprintf("rrd-spill-%d-*.tmp", id))
		if err != nil {
			return nil, fmt.Errorf("rrnet: creating spill file: %w", err)
		}
		sw.spill = f
	}
	if err := sw.ensureConn(); err != nil {
		sw.cleanup()
		return nil, err
	}
	return sw, nil
}

// splitmix64: deterministic jitter source (same generator family as
// faultinject's per-point PRNG).
func (sw *SessionWriter) rand() uint64 {
	sw.prng += 0x9e3779b97f4a7c15
	z := sw.prng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff returns the sleep before reconnect attempt n: base*2^n
// capped, then jittered into [d/2, d] so a fleet of rrds does not
// reconnect in lockstep.
func (sw *SessionWriter) backoff(attempt int) time.Duration {
	d := sw.opts.BackoffBase
	for i := 0; i < attempt && d < sw.opts.BackoffCap; i++ {
		d *= 2
	}
	if d > sw.opts.BackoffCap {
		d = sw.opts.BackoffCap
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(sw.rand()%uint64(half+1))
}

// ensureConn returns with a live connection or a hard error. Each
// failed attempt sleeps the capped backoff; attempts reset only on
// ack progress (not on connect success — a server that accepts
// connections but never acks must still exhaust retries).
func (sw *SessionWriter) ensureConn() error {
	for sw.conn == nil || sw.conn.isDead() {
		if sw.conn != nil {
			sw.dropConn()
			sw.c.mReconnects.Inc(0)
		}
		if sw.attempts > sw.opts.MaxRetries {
			return fmt.Errorf("%w: session %d gave up after %d attempts",
				ErrRetriesExhausted, sw.id, sw.attempts)
		}
		if sw.attempts > 0 {
			sw.c.mRetries.Inc(0)
			sw.retries++
			time.Sleep(sw.backoff(sw.attempts - 1))
		}
		sw.attempts++
		if err := sw.connectOnce(); err != nil {
			if errors.Is(err, ErrRejected) {
				return err
			}
			continue
		}
	}
	return nil
}

// connectOnce dials, performs the preamble + hello handshake, adopts
// the server's contig (the resume point), and starts the ack reader.
func (sw *SessionWriter) connectOnce() error {
	nc, err := sw.c.Dial(sw.opts.Addr, sw.opts.DialTimeout)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		closeConn(nc)
		return err
	}
	if err := setDeadline(nc, sw.opts.FrameTimeout); err != nil {
		return fail(err)
	}
	if err := writePreamble(nc); err != nil {
		return fail(err)
	}
	hello := helloMsg{Proto: ProtoVersion, Session: sw.id, Resume: sw.contig > 0 || sw.nextSeq > 0, Tenant: sw.opts.Tenant}
	if err := writeFrame(nc, MsgHello, encodeHello(hello)); err != nil {
		return fail(err)
	}
	fr := newFrameReader(nc, 1<<20)
	t, payload, err := fr.next()
	if err != nil {
		return fail(err)
	}
	if t == MsgError {
		if em, ok := decodeError(payload); ok {
			return fail(fmt.Errorf("%w: %s", ErrRejected, em.Message))
		}
		return fail(fmt.Errorf("%w: unreadable server error", ErrRejected))
	}
	ack, ok := helloAckMsg{}, false
	if t == MsgHelloAck {
		ack, ok = decodeHelloAck(payload)
	}
	if !ok {
		return fail(fmt.Errorf("rrnet: expected hello-ack, got %s", t))
	}
	if ack.Status == StatusReject {
		return fail(fmt.Errorf("%w: %s", ErrRejected, ack.Reason))
	}
	if err := setDeadline(nc, 0); err != nil {
		return fail(err)
	}
	// The handshake is the one place contig may REWIND: a restarted
	// rrproc recovers to its durable point, and everything past it
	// must be re-sent. durable itself never goes backward.
	sw.contig = ack.Contig
	sw.adoptDurable(ack.Durable)
	sw.sentTo = ack.Contig
	sw.conn = newClientConn(nc, fr)
	return nil
}

// adoptAcks folds an in-stream cumulative ack into the writer's
// state. Within one connection both values only advance. Returns true
// on any progress (which resets the retry budget).
func (sw *SessionWriter) adoptAcks(contig, durable uint64) bool {
	progress := false
	if contig > sw.contig {
		sw.contig = contig
		progress = true
	}
	if sw.adoptDurable(durable) {
		progress = true
	}
	return progress
}

// adoptDurable advances the crash-safe prefix, releasing every
// buffered entry below it.
func (sw *SessionWriter) adoptDurable(durable uint64) bool {
	if durable <= sw.durable {
		return false
	}
	sw.durable = durable
	n := 0
	for n < len(sw.entries) && sw.entries[n].seq < durable {
		n++
	}
	if n > 0 {
		copy(sw.entries, sw.entries[n:])
		for i := len(sw.entries) - n; i < len(sw.entries); i++ {
			sw.entries[i] = entry{}
		}
		sw.entries = sw.entries[:len(sw.entries)-n]
	}
	sw.gauge()
	return true
}

func (sw *SessionWriter) dropConn() {
	if sw.conn != nil {
		sw.conn.shutdown()
		sw.conn = nil
	}
}

// inflight counts entries holding in-memory payloads — the quantity
// the Window bounds. Tombstones and spilled entries are (nearly) free
// and exempt.
func (sw *SessionWriter) inflight() int {
	n := 0
	for i := range sw.entries {
		if sw.entries[i].data != nil {
			n++
		}
	}
	return n
}

func (sw *SessionWriter) gauge() { sw.c.gInflight.Set(0, uint64(len(sw.entries))) }

// Write accumulates log bytes, sealing and shipping a chunk whenever
// ChunkSize is reached. It implements io.Writer so WriteLogV3 can
// stream directly.
func (sw *SessionWriter) Write(p []byte) (int, error) {
	if sw.closed {
		return 0, ErrWriterClosed
	}
	if sw.failed != nil {
		return 0, sw.failed
	}
	sw.buf = append(sw.buf, p...)
	for len(sw.buf) >= sw.opts.ChunkSize {
		data := make([]byte, sw.opts.ChunkSize)
		copy(data, sw.buf)
		rest := copy(sw.buf, sw.buf[sw.opts.ChunkSize:])
		sw.buf = sw.buf[:rest]
		if err := sw.seal(data); err != nil {
			sw.failed = err
			return 0, err
		}
	}
	return len(p), nil
}

// seal turns data into the next chunk, applies backpressure policy,
// and pushes the wire forward.
func (sw *SessionWriter) seal(data []byte) error {
	seq := sw.nextSeq
	sw.nextSeq++
	sw.logLen += uint64(len(data))
	sw.logCRC = crc32.Update(sw.logCRC, castagnoli, data)
	sw.c.mChunks.Inc(0)
	sw.c.mBytes.Add(0, uint64(len(data)))

	e := entry{seq: seq, data: data}
	if sw.inflight() >= sw.opts.Window {
		switch sw.opts.Policy {
		case Block:
			if err := sw.waitForRoom(); err != nil {
				return err
			}
		case Drop:
			sw.awaitRoomBriefly()
			if sw.inflight() >= sw.opts.Window {
				e.data, e.tomb = nil, true
				sw.nDropped++
				if len(sw.dropped) < MaxDroppedReport {
					sw.dropped = append(sw.dropped, seq)
				}
				sw.c.mDropped.Inc(0)
			}
		case Spill:
			off, err := sw.spillOut(data)
			if err != nil {
				return err
			}
			e.data, e.spilled, e.spillOff, e.spillLen = nil, true, off, len(data)
			sw.nSpilled++
			sw.c.mSpilled.Inc(0)
		}
	}
	sw.entries = append(sw.entries, e)
	sw.gauge()
	sw.pump()
	return nil
}

func (sw *SessionWriter) spillOut(data []byte) (int64, error) {
	off, err := sw.spill.Seek(0, 2)
	if err != nil {
		return 0, fmt.Errorf("rrnet: spill seek: %w", err)
	}
	if _, err := sw.spill.Write(data); err != nil {
		return 0, fmt.Errorf("rrnet: spill write: %w", err)
	}
	return off, nil
}

// pump makes best-effort forward progress without blocking the
// producer: drain any acks that arrived, then send every unsent entry
// if the connection is live. Send failures are not retried here —
// the entry stays pending and resume-after-reconnect re-delivers it.
// A dead connection gets one rate-limited reconnect attempt under the
// Drop and Spill policies, whose Writes never reach the blocking
// reconnect loop in waitDrain: without it, one transient reset would
// shed or spill every subsequent chunk until Close even after rrproc
// recovered.
func (sw *SessionWriter) pump() {
	sw.drainAcks()
	if sw.conn == nil || sw.conn.isDead() {
		if sw.opts.Policy == Block {
			return // waitForRoom owns Block's (sleeping) reconnects
		}
		sw.tryReconnect()
		if sw.conn == nil || sw.conn.isDead() {
			return
		}
	}
	sw.sendReady()
}

// tryReconnect makes at most one dial attempt, rate-limited by the
// same capped backoff schedule ensureConn sleeps through — but it
// never sleeps, so a producer under Drop or Spill pays one dial (fast
// when the host is down: connection refused) per backoff period
// instead of a stalled Write. Counts against the shared retry budget;
// once that is exhausted only Close's ensureConn can surface the
// terminal error.
func (sw *SessionWriter) tryReconnect() {
	if sw.conn != nil && !sw.conn.isDead() {
		return
	}
	if sw.attempts > sw.opts.MaxRetries || time.Now().Before(sw.nextDial) {
		return
	}
	if sw.conn != nil {
		sw.dropConn()
		sw.c.mReconnects.Inc(0)
	}
	if sw.attempts > 0 {
		sw.c.mRetries.Inc(0)
		sw.retries++
	}
	sw.attempts++
	if err := sw.connectOnce(); err != nil {
		if errors.Is(err, ErrRejected) {
			sw.failed = err // hard refusal: retrying cannot help
			return
		}
		sw.nextDial = time.Now().Add(sw.backoff(sw.attempts - 1))
		return
	}
	sw.nextDial = time.Time{}
}

// sendReady ships entries from sentTo onward on the current
// connection, in seq order, capped to a sliding window of Window
// chunks past the cumulative ack — so a spilled or tombstoned backlog
// drains at the consumer's pace instead of flooding its socket until
// the write deadline declares the connection dead.
func (sw *SessionWriter) sendReady() {
	for i := range sw.entries {
		e := &sw.entries[i]
		if e.seq < sw.sentTo {
			continue
		}
		if e.seq >= sw.contig+uint64(sw.opts.Window) {
			return
		}
		payload, err := sw.payloadOf(e)
		if err != nil {
			sw.failed = err
			return
		}
		if err := sw.conn.writeMsg(MsgChunk, encodeChunk(chunkMsg{Session: sw.id, Seq: e.seq, Data: payload}), sw.opts.FrameTimeout); err != nil {
			return // conn marked dead; reconnect path re-delivers
		}
		sw.lastSend = time.Now()
		sw.sentTo = e.seq + 1
	}
}

// payloadOf materializes an entry's bytes (reading back from the
// spill file when needed).
func (sw *SessionWriter) payloadOf(e *entry) ([]byte, error) {
	if e.tomb {
		return nil, nil
	}
	if e.spilled {
		buf := make([]byte, e.spillLen)
		if _, err := sw.spill.ReadAt(buf, e.spillOff); err != nil {
			return nil, fmt.Errorf("rrnet: spill read-back: %w", err)
		}
		return buf, nil
	}
	return e.data, nil
}

// drainAcks folds the reader goroutine's progress into the writer's
// state. Any advance resets the retry budget.
func (sw *SessionWriter) drainAcks() {
	if sw.conn == nil {
		return
	}
	contig, durable := sw.conn.acksNow()
	if sw.adoptAcks(contig, durable) {
		sw.attempts = 0
	}
}

// awaitRoomBriefly gives the transport DropGrace to make ack progress
// before the Drop policy sheds: a bounded producer pause, never a
// sleeping reconnect loop. A dead connection gets the one rate-limited
// tryReconnect dial; if that does not revive it the chunk sheds
// immediately — it could not have been delivered anyway.
func (sw *SessionWriter) awaitRoomBriefly() {
	deadline := time.Now().Add(sw.opts.DropGrace)
	for {
		sw.drainAcks()
		if sw.inflight() < sw.opts.Window {
			return
		}
		if sw.conn == nil || sw.conn.isDead() {
			sw.tryReconnect()
		}
		if sw.conn == nil || sw.conn.isDead() || !time.Now().Before(deadline) {
			return
		}
		sw.sendReady()
		sw.nudgeDurability()
		sw.conn.await(min(sw.opts.DropGrace/4, 5*time.Millisecond))
	}
}

// nudgeDurability asks the server to barrier when durability is the
// only thing holding the window: every sent chunk is acked (contig
// caught up with sentTo) but the fsync'd prefix lags. The heartbeat
// triggers the server's idle group-commit flush. Sent at most once
// per ack level, so the fsync rate stays about one per window drain.
func (sw *SessionWriter) nudgeDurability() {
	if sw.conn == nil || sw.conn.isDead() {
		return
	}
	if sw.durable >= sw.contig || sw.contig < sw.sentTo || sw.flushReqAt == sw.contig {
		return
	}
	if err := sw.conn.writeMsg(MsgHeartbeat, encodeNonce(sw.rand()), sw.opts.FrameTimeout); err == nil {
		sw.flushReqAt = sw.contig
		sw.lastSend = time.Now()
		sw.c.mHeartbeats.Inc(0)
	}
}

// waitForRoom blocks until the window has room, reconnecting on
// failure or ack stall. This is the Block policy's slow path and the
// drain loop Close reuses (with room semantics replaced by empty).
func (sw *SessionWriter) waitForRoom() error {
	return sw.waitDrain(func() bool { return sw.inflight() < sw.opts.Window })
}

func (sw *SessionWriter) waitDrain(done func() bool) error {
	stallStart := time.Now()
	for {
		sw.drainAcks()
		if done() {
			return nil
		}
		if err := sw.ensureConn(); err != nil {
			return err
		}
		sw.sendReady()
		if sw.failed != nil {
			return sw.failed
		}
		if sw.conn.isDead() {
			continue
		}
		beforeC, beforeD := sw.contig, sw.durable
		sw.nudgeDurability()
		sw.heartbeatIfIdle()
		sw.conn.await(min(sw.opts.AckStall/4, 50*time.Millisecond))
		sw.drainAcks()
		if sw.contig > beforeC || sw.durable > beforeD {
			stallStart = time.Now()
			continue
		}
		if done() {
			return nil
		}
		if time.Since(stallStart) > sw.opts.AckStall {
			// No ack progress with chunks in flight: the stream (or
			// the server) silently lost frames. Reconnect; resume
			// re-delivers from the server's contig. Counts against
			// the retry budget so a live-but-never-acking server
			// still exhausts retries instead of looping forever.
			sw.dropConn()
			sw.c.mReconnects.Inc(0)
			sw.attempts++
			stallStart = time.Now()
		}
	}
}

// heartbeatIfIdle keeps a quiet connection warm so the server's idle
// timeout does not reap a session that is merely waiting for acks.
func (sw *SessionWriter) heartbeatIfIdle() {
	if sw.conn == nil || sw.conn.isDead() {
		return
	}
	if time.Since(sw.lastSend) < sw.opts.HeartbeatEvery {
		return
	}
	if err := sw.conn.writeMsg(MsgHeartbeat, encodeNonce(sw.rand()), sw.opts.FrameTimeout); err == nil {
		sw.lastSend = time.Now()
		sw.c.mHeartbeats.Inc(0)
	}
}

// Close seals the trailing chunk, drains every pending entry, commits
// the session, and waits for the server's verdict. The returned error
// is nil for both StatusOK and StatusDegraded — consult Result() —
// and non-nil only for rejection or transport failure.
func (sw *SessionWriter) Close() error {
	if sw.closed {
		return sw.failed
	}
	sw.closed = true
	defer sw.cleanup()
	if sw.failed != nil {
		return sw.failed
	}

	if len(sw.buf) > 0 {
		data := make([]byte, len(sw.buf))
		copy(data, sw.buf)
		sw.buf = nil
		if err := sw.seal(data); err != nil {
			sw.failed = err
			return err
		}
	}

	// Drain then commit, as one loop: a reconnect to a restarted
	// rrproc can rewind contig, so the drain condition is re-checked
	// before every commit attempt. The server checks its rolling CRC
	// against ours and classifies the session; re-sending the commit
	// after a reconnect is idempotent (a committed session replies
	// with its stored verdict).
	commit := commitMsg{Session: sw.id, Chunks: sw.nextSeq, LogLen: sw.logLen,
		LogCRC: sw.logCRC, Dropped: sw.dropped, NDrop: sw.nDropped}
	for {
		if err := sw.waitDrain(func() bool { return sw.contig >= sw.nextSeq }); err != nil {
			sw.failed = err
			return err
		}
		if err := sw.ensureConn(); err != nil {
			sw.failed = err
			return err
		}
		if sw.contig < sw.nextSeq {
			continue // the reconnect handshake rewound contig; re-drain
		}
		if err := sw.conn.writeMsg(MsgCommit, encodeCommit(commit), sw.opts.FrameTimeout); err != nil {
			continue
		}
		ack, ok := sw.conn.awaitCommitAck(sw.opts.AckStall)
		if !ok {
			sw.dropConn()
			sw.attempts++ // commit round-trips must also exhaust eventually
			continue
		}
		sw.res = SessionResult{
			Status: ack.Status, Chunks: sw.nextSeq, Bytes: sw.logLen,
			Dropped: sw.nDropped, Spilled: sw.nSpilled, Retries: sw.retries,
			Missing: ack.Missing, Reason: ack.Reason,
		}
		if ack.Status == StatusReject {
			sw.failed = fmt.Errorf("%w: %s", ErrRejected, ack.Reason)
			return sw.failed
		}
		return nil
	}
}

// Abort abandons the session without committing: the producer feeding
// Write failed upstream, so the streamed prefix is truncated. Close
// would drain and commit it — and since the rolling CRC covers only
// the bytes actually written, the server would classify the truncated
// session as healthy and journal it that way. Abort leaves the
// session uncommitted on the server instead, visible as such to
// rrproc -query and eligible for a later resume. No-op after Close.
func (sw *SessionWriter) Abort() {
	if sw.closed {
		return
	}
	sw.closed = true
	if sw.failed == nil {
		sw.failed = errors.New("rrnet: session aborted")
	}
	sw.cleanup()
}

// Result reports the session outcome; valid after Close.
func (sw *SessionWriter) Result() SessionResult { return sw.res }

func (sw *SessionWriter) cleanup() {
	sw.dropConn()
	if sw.spill != nil {
		name := sw.spill.Name()
		_ = sw.spill.Close() // spill read-back is over; nothing depends on the close
		_ = os.Remove(name)
		sw.spill = nil
	}
	sw.entries = nil
	sw.gauge()
}

// clientConn pairs the connection with a reader goroutine that folds
// server frames into shared state the writer polls.
type clientConn struct {
	nc net.Conn

	mu        sync.Mutex
	contig    uint64
	durable   uint64
	commitAck *commitAckMsg
	dead      bool
	sig       chan struct{}
}

func newClientConn(nc net.Conn, fr *frameReader) *clientConn {
	cc := &clientConn{nc: nc, sig: make(chan struct{}, 1)}
	go cc.readLoop(fr) //rrlint:allow goroleak -- exits when the conn closes: every read on a closed conn errors out
	return cc
}

func (cc *clientConn) readLoop(fr *frameReader) {
	for {
		t, payload, err := fr.next()
		if err != nil {
			cc.mu.Lock()
			cc.dead = true
			cc.mu.Unlock()
			cc.wake()
			return
		}
		switch t {
		case MsgAck:
			if m, ok := decodeAck(payload); ok {
				cc.mu.Lock()
				if m.Contig > cc.contig {
					cc.contig = m.Contig
				}
				if m.Durable > cc.durable {
					cc.durable = m.Durable
				}
				cc.mu.Unlock()
				cc.wake()
			}
		case MsgCommitAck:
			if m, ok := decodeCommitAck(payload); ok {
				cc.mu.Lock()
				cc.commitAck = &m
				cc.mu.Unlock()
				cc.wake()
			}
		case MsgHeartbeatAck:
			// Liveness only; deliberately does not count as ack
			// progress (a server that heartbeats but never acks is
			// still a stalled session).
		case MsgError:
			cc.mu.Lock()
			cc.dead = true
			cc.mu.Unlock()
			cc.wake()
			return
		}
	}
}

func (cc *clientConn) wake() {
	select {
	case cc.sig <- struct{}{}:
	default:
	}
}

func (cc *clientConn) acksNow() (contig, durable uint64) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.contig, cc.durable
}

func (cc *clientConn) isDead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.dead
}

// await blocks until the reader signals progress or d elapses.
func (cc *clientConn) await(d time.Duration) {
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-cc.sig:
	case <-t.C:
	}
}

// awaitCommitAck waits up to d for the commit verdict.
func (cc *clientConn) awaitCommitAck(d time.Duration) (commitAckMsg, bool) {
	deadline := time.Now().Add(d)
	for {
		cc.mu.Lock()
		ack, dead := cc.commitAck, cc.dead
		cc.mu.Unlock()
		if ack != nil {
			return *ack, true
		}
		if dead || time.Now().After(deadline) {
			return commitAckMsg{}, false
		}
		cc.await(min(d/4, 50*time.Millisecond))
	}
}

// writeMsg writes one frame under a write deadline, marking the
// connection dead on any failure (including deadline setup — an
// unsettable deadline means the fd is already gone).
func (cc *clientConn) writeMsg(t MsgType, payload []byte, d time.Duration) error {
	if err := setWriteDeadline(cc.nc, d); err != nil {
		cc.markDead()
		return err
	}
	if err := writeFrame(cc.nc, t, payload); err != nil {
		cc.markDead()
		return err
	}
	return nil
}

func (cc *clientConn) markDead() {
	cc.mu.Lock()
	cc.dead = true
	cc.mu.Unlock()
	cc.wake()
}

func (cc *clientConn) shutdown() {
	cc.markDead()
	closeConn(cc.nc)
}

// setDeadline applies (or clears, d<=0 clears) a full deadline.
func setDeadline(nc net.Conn, d time.Duration) error {
	if d <= 0 {
		return nc.SetDeadline(time.Time{})
	}
	return nc.SetDeadline(time.Now().Add(d))
}

func setWriteDeadline(nc net.Conn, d time.Duration) error {
	if d <= 0 {
		return nc.SetWriteDeadline(time.Time{})
	}
	return nc.SetWriteDeadline(time.Now().Add(d))
}

// closeConn closes a connection whose close error has nowhere useful
// to go (teardown paths: the session outcome is already decided).
func closeConn(nc net.Conn) {
	_ = nc.Close() //rrlint:allow errcheck-io -- teardown close; the session outcome is already decided
}
