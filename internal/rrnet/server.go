package rrnet

import (
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"relaxreplay/internal/telemetry"
)

// Server is the rrproc side: it accepts rrd connections, multiplexes
// N concurrent sessions into the journal, acks cumulatively, dedups
// re-delivered chunks, and classifies each session at commit.
//
// Lock order: sess.mu may be held while taking s.mu or jmu, never the
// reverse. Code holding s.mu touches sessions only through their
// atomic fields.
type Server struct {
	opts ServerOptions
	jr   *Journal
	jmu  sync.Mutex // serializes journal appends

	// jWatermark tracks, per session, how many chunks have been
	// written to the journal file — maintained under jmu, in write
	// order, so a snapshot taken under the same jmu hold as an fsync
	// barrier describes exactly the chunks that fsync covered.
	jWatermark map[uint64]uint64

	mu       sync.Mutex
	sessions map[uint64]*serverSession
	active   int // uncommitted sessions (MaxSessions bound)
	conns    map[net.Conn]struct{}
	draining bool
	closed   bool

	ln net.Listener
	wg sync.WaitGroup

	mChunks, mBytes, mDups, mReordered  *telemetry.Counter
	mCommits, mRejects, mResumes, mConn *telemetry.Counter
	gSessions                           *telemetry.Gauge
}

// serverSession is the per-session reassembly state. durable is an
// atomic so the post-fsync promotion sweep can run without taking
// every session's lock; everything else is under mu.
type serverSession struct {
	id      uint64
	durable atomic.Uint64 // chunks covered by an fsync'd segment

	mu      sync.Mutex
	tenant  string // immutable once the session is published
	contig  uint64            // next seq needed
	crc     uint32            // rolling CRC32C over in-order payloads
	bytes   uint64            // in-order payload bytes received
	gaps    uint64            // tombstone (0-byte) chunks seen
	pending map[uint64][]byte // bounded out-of-order buffer

	committed bool
	verdict   commitAckMsg
}

// NewServer validates opts, opens (recovering) the journal, and
// restores any uncommitted sessions so clients can resume across an
// rrproc restart. It does not listen yet; call Serve or ServeConn.
func NewServer(opts ServerOptions, reg *telemetry.Registry) (*Server, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	jr, err := OpenJournal(opts.JournalPath, opts.FsyncEveryBytes)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:       opts,
		jr:         jr,
		jWatermark: make(map[uint64]uint64),
		sessions:   make(map[uint64]*serverSession),
		conns:      make(map[net.Conn]struct{}),

		mChunks:    reg.Counter("rrnet.server.chunks"),
		mBytes:     reg.Counter("rrnet.server.bytes"),
		mDups:      reg.Counter("rrnet.server.chunks-duplicate"),
		mReordered: reg.Counter("rrnet.server.chunks-reordered"),
		mCommits:   reg.Counter("rrnet.server.commits"),
		mRejects:   reg.Counter("rrnet.server.rejects"),
		mResumes:   reg.Counter("rrnet.server.resumes"),
		mConn:      reg.Counter("rrnet.server.conns"),
		gSessions:  reg.Gauge("rrnet.server.sessions"),
	}
	if err := s.recover(); err != nil {
		closeJournal(jr)
		return nil, err
	}
	return s, nil
}

// recover rebuilds in-memory session state from the journal, so a
// restarted rrproc re-offers each session's contiguous prefix instead
// of forcing a from-scratch re-stream.
func (s *Server) recover() error {
	v, err := ReadJournal(s.opts.JournalPath)
	if err != nil {
		return err
	}
	for _, id := range v.Order {
		js := v.Sessions[id]
		ss := &serverSession{
			id: id, tenant: js.Tenant,
			contig:  js.Chunks,
			bytes:   uint64(len(js.Data)),
			crc:     crc32.Checksum(js.Data, castagnoli),
			pending: make(map[uint64][]byte),
		}
		ss.durable.Store(js.Durable)
		s.jWatermark[id] = js.Chunks
		if js.Committed {
			ss.committed = true
			ss.verdict = commitAckMsg{Session: id, Status: js.Status, Missing: js.Missing, Reason: js.Reason}
		} else {
			s.active++
		}
		s.sessions[id] = ss
	}
	s.gSessions.Set(0, uint64(len(s.sessions)))
	return nil
}

// Serve accepts connections on ln until Shutdown. It owns ln.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rrnet: server is shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining || s.closed
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		if !s.track(nc) {
			closeConn(nc)
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(nc)
		}()
	}
}

// Listen binds opts.Addr and serves on it.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound listen address (for :0 test listeners).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) track(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrack(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}

// ServeConn runs one connection to completion (also the test entry
// point for net.Pipe ends). Closes nc before returning.
func (s *Server) ServeConn(nc net.Conn) {
	defer closeConn(nc)
	defer s.untrack(nc)
	s.mConn.Inc(0)
	if err := s.readDeadline(nc); err != nil {
		return
	}
	if err := readPreamble(nc); err != nil {
		s.sendError(nc, 1, err.Error())
		return
	}
	fr := newFrameReader(nc, 1<<20)
	var sess *serverSession
	for {
		if err := s.readDeadline(nc); err != nil {
			return
		}
		t, payload, err := fr.next()
		if err != nil {
			return
		}
		switch t {
		case MsgHello:
			m, ok := decodeHello(payload)
			if !ok || m.Proto != ProtoVersion {
				s.sendError(nc, 1, "malformed hello")
				return
			}
			var reject string
			sess, reject = s.adoptSession(m)
			if sess == nil {
				s.mRejects.Inc(0)
				s.writeMsg(nc, MsgHelloAck, encodeHelloAck(helloAckMsg{Status: StatusReject, Reason: reject}))
				return
			}
			sess.mu.Lock()
			ack := helloAckMsg{Status: StatusOK, Contig: sess.contig, Durable: sess.durable.Load()}
			sess.mu.Unlock()
			if m.Resume {
				s.mResumes.Inc(0)
			}
			if !s.writeMsg(nc, MsgHelloAck, encodeHelloAck(ack)) {
				return
			}
		case MsgChunk:
			if sess == nil {
				s.sendError(nc, 2, "chunk before hello")
				return
			}
			m, ok := decodeChunk(payload)
			if !ok || m.Session != sess.id {
				continue // damaged or misrouted; the cumulative ack re-delivers
			}
			if s.opts.SlowConsumer > 0 {
				time.Sleep(s.opts.SlowConsumer)
			}
			contig, durable, err := s.applyChunk(sess, m.Seq, m.Data)
			if err != nil {
				s.sendError(nc, 3, "journal write failed: "+err.Error())
				return
			}
			if !s.writeMsg(nc, MsgAck, encodeAck(ackMsg{Session: sess.id, Contig: contig, Durable: durable})) {
				return
			}
		case MsgCommit:
			if sess == nil {
				s.sendError(nc, 2, "commit before hello")
				return
			}
			m, ok := decodeCommit(payload)
			if !ok || m.Session != sess.id {
				continue
			}
			ack, err := s.commitSession(sess, m)
			if err != nil {
				s.sendError(nc, 3, "journal commit failed: "+err.Error())
				return
			}
			if !s.writeMsg(nc, MsgCommitAck, encodeCommitAck(ack)) {
				return
			}
		case MsgHeartbeat:
			// A heartbeat means the client is idle — usually stalled
			// waiting for durability. Group-commit: barrier any unsynced
			// journal bytes now and re-ack with the advanced durable
			// point, so a window gated on durability can never deadlock
			// against a byte-threshold fsync cadence (the wedge: window
			// full -> no new chunks -> threshold never reached -> durable
			// never advances -> window never drains).
			if sess != nil {
				if err := s.flushIdle(); err != nil {
					s.sendError(nc, 3, "journal flush failed: "+err.Error())
					return
				}
				sess.mu.Lock()
				ack := ackMsg{Session: sess.id, Contig: sess.contig, Durable: sess.durable.Load()}
				sess.mu.Unlock()
				if !s.writeMsg(nc, MsgAck, encodeAck(ack)) {
					return
				}
			}
			if nonce, ok := decodeNonce(payload); ok {
				if !s.writeMsg(nc, MsgHeartbeatAck, encodeNonce(nonce)) {
					return
				}
			}
		default:
			// Unknown-but-intact frame: skip (forward compatibility).
		}
	}
}

// adoptSession resolves a hello to its session, creating one if new.
// A hello for an existing session is always treated as a resume
// regardless of the Resume flag — a retried first-connect whose
// hello-ack was lost looks like a fresh hello for a session the
// server already has.
func (s *Server) adoptSession(m helloMsg) (*serverSession, string) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, "server is draining"
	}
	if sess := s.sessions[m.Session]; sess != nil {
		// tenant is immutable after publication, so this read needs no
		// sess.mu (taking it here would also invert the documented
		// sess.mu -> s.mu lock order).
		tenant := sess.tenant
		s.mu.Unlock()
		if tenant != m.Tenant {
			// Session-ID collision between two rrd hosts (IDs default
			// to wall-clock nanos): adopting would silently merge the
			// streams — the second client's chunks ack as duplicates
			// and vanish, and its commit could poison the first
			// session's verdict.
			return nil, fmt.Sprintf("session %d belongs to tenant %q, not %q", m.Session, tenant, m.Tenant)
		}
		return sess, ""
	}
	if s.active >= s.opts.MaxSessions {
		n := s.active
		s.mu.Unlock()
		return nil, fmt.Sprintf("session limit reached (%d active)", n)
	}
	sess := &serverSession{id: m.Session, tenant: m.Tenant, pending: make(map[uint64][]byte)}
	s.sessions[m.Session] = sess
	s.active++
	s.gSessions.Set(0, uint64(len(s.sessions)))
	s.mu.Unlock()

	snap, err := s.journalSession(m.Session, m.Tenant)
	if err != nil {
		s.mu.Lock()
		delete(s.sessions, m.Session)
		s.active--
		s.mu.Unlock()
		return nil, "journal write failed"
	}
	s.promoteDurable(snap)
	return sess, ""
}

// applyChunk folds one chunk into the session: duplicates are acked
// and dropped, in-order chunks extend the prefix (and drain the
// reorder buffer behind them), bounded-out-of-order chunks are held,
// and anything beyond the reorder window is discarded — the client's
// ack-stall reconnect re-delivers it.
func (s *Server) applyChunk(sess *serverSession, seq uint64, data []byte) (contig, durable uint64, err error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.committed {
		return sess.contig, sess.durable.Load(), nil
	}
	switch {
	case seq < sess.contig:
		s.mDups.Inc(0)
	case seq == sess.contig:
		//rrlint:allow blockinglock -- journal-first durability: the group-commit fsync barrier runs under sess.mu by design (DESIGN §17)
		if err := s.extend(sess, data); err != nil {
			return sess.contig, sess.durable.Load(), err
		}
		for {
			next, ok := sess.pending[sess.contig]
			if !ok {
				break
			}
			delete(sess.pending, sess.contig)
			//rrlint:allow blockinglock -- same barrier as above for the reordered-chunk drain
			if err := s.extend(sess, next); err != nil {
				return sess.contig, sess.durable.Load(), err
			}
		}
	default: // seq > contig: out of order
		if seq-sess.contig <= uint64(s.opts.ReorderWindow) && len(sess.pending) < s.opts.ReorderWindow {
			if _, dup := sess.pending[seq]; !dup {
				cp := make([]byte, len(data))
				copy(cp, data)
				sess.pending[seq] = cp
				s.mReordered.Inc(0)
			}
		}
		// else: beyond the window — discard; cumulative ack recovers.
	}
	return sess.contig, sess.durable.Load(), nil
}

// extend appends one in-order chunk: journal first, then account.
// Caller holds sess.mu.
func (s *Server) extend(sess *serverSession, data []byte) error {
	snap, err := s.journalChunk(sess.id, sess.contig, data)
	if err != nil {
		return err
	}
	sess.crc = crc32.Update(sess.crc, castagnoli, data)
	sess.bytes += uint64(len(data))
	if len(data) == 0 {
		sess.gaps++
	}
	sess.contig++
	s.mChunks.Inc(0)
	s.mBytes.Add(0, uint64(len(data)))
	s.promoteDurable(snap)
	return nil
}

// flushIdle barriers the journal if it holds unsynced bytes and
// promotes every session's durable point. Called from the heartbeat
// path: it is the idle half of group commit (the busy half is the
// FsyncEveryBytes threshold inside extend).
func (s *Server) flushIdle() error {
	s.jmu.Lock()
	var snap map[uint64]uint64
	var err error
	if s.jr.sinceSync > 0 {
		//rrlint:allow blockinglock -- jmu exists to serialize the journal; the idle-flush fsync must run under it
		if err = s.jr.barrier(); err == nil {
			snap = s.watermarksLocked()
		}
	}
	s.jmu.Unlock()
	if err != nil {
		return err
	}
	s.promoteDurable(snap)
	return nil
}

// watermarksLocked snapshots every session's journaled chunk count.
// Caller holds jmu, and must have held it continuously since the
// fsync barrier the snapshot describes.
func (s *Server) watermarksLocked() map[uint64]uint64 {
	snap := make(map[uint64]uint64, len(s.jWatermark))
	for id, n := range s.jWatermark {
		snap[id] = n
	}
	return snap
}

// promoteDurable marks each snapshotted session's fsync-covered chunk
// prefix durable. snap must be a watermarksLocked snapshot taken under
// the same jmu hold as the barrier: promoting from live counters after
// releasing jmu would let a chunk journaled between the fsync and the
// sweep be acked durable un-fsynced — the client frees its copy, and a
// crash before the next fsync loses the chunk permanently. Touches
// only the durable atomics, so holding a sess.mu while calling is
// fine. A nil snap (no barrier fired) is a no-op.
func (s *Server) promoteDurable(snap map[uint64]uint64) {
	if len(snap) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, n := range snap {
		if sess := s.sessions[id]; sess != nil {
			storeMax(&sess.durable, n)
		}
	}
}

// storeMax advances a monotonically: promotion sweeps run outside
// jmu, so an older barrier's snapshot can be applied after a newer
// one's and must not rewind it.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// commitSession classifies the session against the client's commit
// declaration and journals the verdict (fsync'd before the ack):
//
//   - identical: no shed chunks, every chunk present, byte count and
//     rolling CRC match the client's — the journaled bytes are the
//     client's WriteLogV3 output, bit for bit.
//   - degraded-with-report: the client shed chunks under Drop policy
//     (tombstones leave gaps), or chunks never arrived; the gap count
//     travels in the verdict.
//   - rejected: everything arrived but the bytes disagree with the
//     client's CRC — corruption survived the per-frame checks, so the
//     session must not be trusted.
//
// Recommitting a committed session returns the stored verdict.
func (s *Server) commitSession(sess *serverSession, m commitMsg) (commitAckMsg, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.committed {
		return sess.verdict, nil
	}
	ack := commitAckMsg{Session: sess.id}
	missing := uint64(0)
	if m.Chunks > sess.contig {
		missing = m.Chunks - sess.contig
	}
	switch {
	case m.NDrop == 0 && missing == 0 && sess.bytes == m.LogLen && sess.crc == m.LogCRC && sess.gaps == 0:
		ack.Status = StatusOK
	case m.NDrop > 0 || missing > 0 || sess.gaps > 0:
		ack.Status = StatusDegraded
		ack.Missing = m.NDrop + missing
		ack.Reason = fmt.Sprintf("%d chunks shed by client, %d never arrived", m.NDrop, missing)
	default:
		ack.Status = StatusReject
		ack.Reason = fmt.Sprintf("content mismatch: %d/%d bytes, crc %08x/%08x (journal/client)",
			sess.bytes, m.LogLen, sess.crc, m.LogCRC)
		s.mRejects.Inc(0)
	}
	s.jmu.Lock()
	//rrlint:allow blockinglock -- the COMMIT record must be durable before the ack leaves; fsync under jmu is the contract
	err := s.jr.Commit(sess.id, ack.Status, m.Chunks, m.LogLen, m.LogCRC, m.NDrop, ack.Missing, ack.Reason)
	var snap map[uint64]uint64
	if err == nil {
		snap = s.watermarksLocked() // Commit always barriers
	}
	s.jmu.Unlock()
	if err != nil {
		return ack, err
	}
	sess.committed = true
	sess.verdict = ack
	sess.pending = nil
	s.promoteDurable(snap)
	s.mu.Lock()
	s.active--
	s.mu.Unlock()
	s.mCommits.Inc(0)
	return ack, nil
}

// journalSession and journalChunk append one record each. When the
// append crossed the fsync threshold they return the watermark
// snapshot to promote (captured before jmu is released, so it covers
// exactly what the fsync wrote); nil otherwise.
func (s *Server) journalSession(id uint64, tenant string) (map[uint64]uint64, error) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	//rrlint:allow blockinglock -- journal append may group-commit fsync; jmu serializes the journal by design
	synced, err := s.jr.Session(id, tenant)
	if err != nil {
		return nil, err
	}
	if _, ok := s.jWatermark[id]; !ok {
		s.jWatermark[id] = 0
	}
	if !synced {
		return nil, nil
	}
	return s.watermarksLocked(), nil
}

func (s *Server) journalChunk(id, seq uint64, data []byte) (map[uint64]uint64, error) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	//rrlint:allow blockinglock -- journal append may group-commit fsync; jmu serializes the journal by design
	synced, err := s.jr.Chunk(id, seq, data)
	if err != nil {
		return nil, err
	}
	s.jWatermark[id] = seq + 1
	if !synced {
		return nil, nil
	}
	return s.watermarksLocked(), nil
}

// writeMsg writes one frame under the write deadline; false marks the
// connection unusable (caller returns, client reconnects).
func (s *Server) writeMsg(nc net.Conn, t MsgType, payload []byte) bool {
	if err := setWriteDeadline(nc, s.opts.FrameTimeout); err != nil {
		return false
	}
	return writeFrame(nc, t, payload) == nil
}

func (s *Server) sendError(nc net.Conn, code uint8, msg string) {
	s.writeMsg(nc, MsgError, encodeError(errorMsg{Code: code, Message: msg}))
}

// readDeadline arms the per-frame read deadline; an idle connection
// (no chunks, no heartbeats) is reaped after FrameTimeout.
func (s *Server) readDeadline(nc net.Conn) error {
	return nc.SetReadDeadline(time.Now().Add(s.opts.FrameTimeout))
}

// Shutdown drains gracefully: stop accepting, give in-flight
// connections DrainTimeout to finish, then cut them, barrier the
// journal, and close it. Safe to call more than once.
func (s *Server) Shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close() // unblocks Accept; the error has no consumer
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(s.opts.DrainTimeout)
	defer t.Stop()
	select {
	case <-done:
	case <-t.C:
		s.mu.Lock()
		for nc := range s.conns {
			closeConn(nc)
		}
		s.mu.Unlock()
		<-done
	}

	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.jmu.Lock()
	defer s.jmu.Unlock()
	//rrlint:allow blockinglock -- shutdown's final fsync; nothing else can hold jmu once closed is set
	return s.jr.Close()
}

func closeJournal(j *Journal) {
	_ = j.Close()
}
