package rrnet

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"relaxreplay/internal/faultinject"
)

// fastClient returns ClientOptions tuned for test speed: millisecond
// backoffs, small chunks, tight stall detection.
func fastClient(addr string) ClientOptions {
	return ClientOptions{
		Addr:           addr,
		Tenant:         "test",
		ChunkSize:      512,
		Window:         8,
		MaxRetries:     6,
		BackoffBase:    2 * time.Millisecond,
		BackoffCap:     20 * time.Millisecond,
		DialTimeout:    500 * time.Millisecond,
		FrameTimeout:   2 * time.Second,
		HeartbeatEvery: 100 * time.Millisecond,
		AckStall:       300 * time.Millisecond,
		Seed:           42,
	}
}

func fastServer(journal string) ServerOptions {
	return ServerOptions{
		Addr:            "127.0.0.1:0",
		JournalPath:     journal,
		MaxSessions:     8,
		ReorderWindow:   16,
		FrameTimeout:    2 * time.Second,
		DrainTimeout:    2 * time.Second,
		FsyncEveryBytes: 4 << 10,
	}
}

// startServer builds a server on an ephemeral port and serves it in
// the background; returns the server and its dial address.
func startServer(t *testing.T, opts ServerOptions) (*Server, string) {
	t.Helper()
	s, err := NewServer(opts, nil)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		if err := s.Serve(ln); err != nil {
			t.Logf("serve: %v", err)
		}
	}()
	return s, ln.Addr().String()
}

// testPayload builds deterministic pseudo-random bytes.
func testPayload(n int, seed uint64) []byte {
	out := make([]byte, n)
	state := seed
	for i := range out {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		out[i] = byte(z ^ (z >> 31))
	}
	return out
}

// streamAll writes payload through the session in uneven pieces.
func streamAll(t *testing.T, sw *SessionWriter, payload []byte) {
	t.Helper()
	step := 700 // deliberately not a chunk multiple
	for off := 0; off < len(payload); off += step {
		end := min(off+step, len(payload))
		if _, err := sw.Write(payload[off:end]); err != nil {
			t.Fatalf("Write at %d: %v", off, err)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	base := fastClient("x:1")
	if err := base.Validate(); err != nil {
		t.Fatalf("valid client options rejected: %v", err)
	}
	clientCases := map[string]func(*ClientOptions){
		"empty addr":       func(o *ClientOptions) { o.Addr = "" },
		"negative chunk":   func(o *ClientOptions) { o.ChunkSize = -1 },
		"oversize chunk":   func(o *ClientOptions) { o.ChunkSize = MaxWirePayload },
		"negative window":  func(o *ClientOptions) { o.Window = -3 },
		"negative retries": func(o *ClientOptions) { o.MaxRetries = -1 },
		"negative backoff": func(o *ClientOptions) { o.BackoffBase = -time.Second },
		"cap below base":   func(o *ClientOptions) { o.BackoffBase = time.Second; o.BackoffCap = time.Millisecond },
		"negative timeout": func(o *ClientOptions) { o.FrameTimeout = -1 },
		"negative grace":   func(o *ClientOptions) { o.DropGrace = -time.Millisecond },
		"bogus policy":     func(o *ClientOptions) { o.Policy = BackpressurePolicy(9) },
		"spill without dir": func(o *ClientOptions) {
			o.Policy = Spill
			o.SpillDir = ""
		},
	}
	for name, mutate := range clientCases {
		o := base
		mutate(&o)
		if err := o.Validate(); !errors.Is(err, ErrBadOptions) {
			t.Errorf("client %s: want ErrBadOptions, got %v", name, err)
		}
	}

	sbase := fastServer("/tmp/j")
	if err := sbase.Validate(); err != nil {
		t.Fatalf("valid server options rejected: %v", err)
	}
	serverCases := map[string]func(*ServerOptions){
		"empty addr":        func(o *ServerOptions) { o.Addr = "" },
		"empty journal":     func(o *ServerOptions) { o.JournalPath = "" },
		"negative sessions": func(o *ServerOptions) { o.MaxSessions = -1 },
		"negative reorder":  func(o *ServerOptions) { o.ReorderWindow = -1 },
		"negative fsync":    func(o *ServerOptions) { o.FsyncEveryBytes = -1 },
		"negative drain":    func(o *ServerOptions) { o.DrainTimeout = -time.Second },
	}
	for name, mutate := range serverCases {
		o := sbase
		mutate(&o)
		if err := o.Validate(); !errors.Is(err, ErrBadOptions) {
			t.Errorf("server %s: want ErrBadOptions, got %v", name, err)
		}
	}
}

func TestParseBackpressure(t *testing.T) {
	for _, want := range []BackpressurePolicy{Block, Drop, Spill} {
		got, err := ParseBackpressure(want.String())
		if err != nil || got != want {
			t.Errorf("round-trip %v: got %v, %v", want, got, err)
		}
	}
	if _, err := ParseBackpressure("shed"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestFrameResync proves the wire reader skips garbage and corrupt
// frames and still delivers the intact ones — the same salvage
// discipline as the log decoder.
func TestFrameResync(t *testing.T) {
	var stream []byte
	stream = append(stream, []byte("leading garbage")...)
	stream = appendFrame(stream, MsgHeartbeat, encodeNonce(7))
	stream = append(stream, 0xF5, 'R', 'F') // sync-word prefix tease
	corrupt := appendFrame(nil, MsgChunk, encodeChunk(chunkMsg{Session: 1, Seq: 0, Data: []byte("x")}))
	corrupt[len(corrupt)-1] ^= 0xFF // break the CRC
	stream = append(stream, corrupt...)
	stream = appendFrame(stream, MsgAck, encodeAck(ackMsg{Session: 1, Contig: 5, Durable: 3}))

	fr := newFrameReader(bytes.NewReader(stream), 0)
	tp, payload, err := fr.next()
	if err != nil || tp != MsgHeartbeat {
		t.Fatalf("first frame: %v %v", tp, err)
	}
	if n, ok := decodeNonce(payload); !ok || n != 7 {
		t.Fatalf("nonce: %d %v", n, ok)
	}
	tp, payload, err = fr.next()
	if err != nil || tp != MsgAck {
		t.Fatalf("second frame: %v %v", tp, err)
	}
	if m, ok := decodeAck(payload); !ok || m.Contig != 5 || m.Durable != 3 {
		t.Fatalf("ack: %+v %v", m, ok)
	}
	if fr.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1 (the corrupted chunk)", fr.Dropped)
	}
	if fr.Skipped == 0 {
		t.Error("Skipped = 0, want > 0 (the leading garbage)")
	}
	if _, _, err := fr.next(); err == nil {
		t.Error("expected EOF-ish error at stream end")
	}
}

// TestEndToEnd is the happy path: one session over real TCP, journal
// holds byte-identical content, verdict is identical.
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j.rrjl")
	s, addr := startServer(t, fastServer(jpath))

	c, err := NewClient(fastClient(addr), nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(20<<10, 1)
	sw, err := c.OpenSession(100)
	if err != nil {
		t.Fatal(err)
	}
	streamAll(t, sw, payload)
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res := sw.Result(); res.Status != StatusOK {
		t.Fatalf("status = %d (%s), want OK", res.Status, res.Reason)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	sess := v.Sessions[100]
	if sess == nil {
		t.Fatal("session 100 missing from journal")
	}
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sess.Data, payload) {
		t.Fatalf("journal bytes differ: %d vs %d", len(sess.Data), len(payload))
	}
	if v.TornTail || v.DroppedFrames != 0 || v.SkippedBytes != 0 {
		t.Errorf("unexpected salvage: %+v", v)
	}
}

// TestConcurrentSessions multiplexes two tenants into one journal.
func TestConcurrentSessions(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	s, addr := startServer(t, fastServer(jpath))

	payloads := map[uint64][]byte{
		201: testPayload(16<<10, 11),
		202: testPayload(24<<10, 22),
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(payloads))
	for id, payload := range payloads {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := NewClient(fastClient(addr), nil)
			if err != nil {
				errs <- err
				return
			}
			sw, err := c.OpenSession(id)
			if err != nil {
				errs <- err
				return
			}
			for off := 0; off < len(payload); off += 900 {
				end := min(off+900, len(payload))
				if _, err := sw.Write(payload[off:end]); err != nil {
					errs <- err
					return
				}
			}
			if err := sw.Close(); err != nil {
				errs <- err
				return
			}
			if res := sw.Result(); res.Status != StatusOK {
				errs <- fmt.Errorf("session %d: status %d (%s)", id, res.Status, res.Reason)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	for id, payload := range payloads {
		sess := v.Sessions[id]
		if sess == nil {
			t.Fatalf("session %d missing", id)
		}
		if err := sess.Verify(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sess.Data, payload) {
			t.Fatalf("session %d bytes differ", id)
		}
	}
}

// TestResumeAfterConnCut severs the connection mid-stream; the client
// must reconnect, resume from the server's contig, and still land an
// identical session.
func TestResumeAfterConnCut(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	s, addr := startServer(t, fastServer(jpath))

	c, err := NewClient(fastClient(addr), nil)
	if err != nil {
		t.Fatal(err)
	}
	var cur atomic.Pointer[net.Conn]
	base := c.Dial
	c.Dial = func(a string, d time.Duration) (net.Conn, error) {
		nc, err := base(a, d)
		if err == nil {
			cur.Store(&nc)
		}
		return nc, err
	}
	sw, err := c.OpenSession(300)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(32<<10, 3)
	half := len(payload) / 2
	streamAll(t, sw, payload[:half])
	if ncp := cur.Load(); ncp != nil {
		closeConn(*ncp) // sever mid-session
	}
	streamAll(t, sw, payload[half:])
	if err := sw.Close(); err != nil {
		t.Fatalf("Close after cut: %v", err)
	}
	if res := sw.Result(); res.Status != StatusOK {
		t.Fatalf("status = %d (%s), want OK after resume", res.Status, res.Reason)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Sessions[300].Data, payload) {
		t.Fatal("resumed session bytes differ")
	}
}

// TestSilentDropRecovered injects net.drop (a frame vanishes with a
// fake success) and proves the ack-stall machinery re-delivers it —
// the one failure no error path can catch.
func TestSilentDropRecovered(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	s, addr := startServer(t, fastServer(jpath))

	inj := faultinject.New(99, faultinject.NetDrop)
	inj.ArmWithin(faultinject.NetDrop, 20) // land inside the stream

	c, err := NewClient(fastClient(addr), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := c.Dial
	c.Dial = func(a string, d time.Duration) (net.Conn, error) {
		nc, err := base(a, d)
		if err != nil {
			return nil, err
		}
		return WrapFaultConn(nc, inj), nil
	}
	sw, err := c.OpenSession(400)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(24<<10, 4)
	streamAll(t, sw, payload)
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res := sw.Result(); res.Status != StatusOK {
		t.Fatalf("status = %d (%s), want OK (drop must be re-delivered)", res.Status, res.Reason)
	}
	if n := inj.Counts()[faultinject.NetDrop]; n != 1 {
		t.Fatalf("net.drop fired %d times, want exactly 1", n)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Sessions[400].Data, payload) {
		t.Fatal("session bytes differ after drop recovery")
	}
}

// TestDropPolicyDegrades pairs a deliberately slow consumer with the
// Drop policy: the client sheds chunks, reports them, and the server
// classifies the session degraded-with-report — never silently short.
func TestDropPolicyDegrades(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	sopts := fastServer(jpath)
	sopts.SlowConsumer = 30 * time.Millisecond
	s, addr := startServer(t, sopts)

	copts := fastClient(addr)
	copts.Policy = Drop
	copts.Window = 2
	c, err := NewClient(copts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c.OpenSession(500)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(16<<10, 5)
	streamAll(t, sw, payload)
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := sw.Result()
	if res.Dropped == 0 {
		t.Skip("consumer fast enough that nothing was shed; nothing to assert")
	}
	if res.Status != StatusDegraded {
		t.Fatalf("status = %d (%s), want degraded with %d drops", res.Status, res.Reason, res.Dropped)
	}
	if res.Missing != res.Dropped {
		t.Errorf("Missing = %d, want %d (every shed chunk reported)", res.Missing, res.Dropped)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	sess := v.Sessions[500]
	if sess.Status != StatusDegraded {
		t.Errorf("journal status = %d, want degraded", sess.Status)
	}
	if err := sess.Verify(); err == nil {
		t.Error("Verify must refuse a degraded session")
	}
}

// TestSpillPolicyStaysIdentical pairs the slow consumer with Spill:
// nothing is shed, the overflow transits the spill file, and the
// session still commits identical.
func TestSpillPolicyStaysIdentical(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j.rrjl")
	sopts := fastServer(jpath)
	sopts.SlowConsumer = 10 * time.Millisecond
	s, addr := startServer(t, sopts)

	copts := fastClient(addr)
	copts.Policy = Spill
	copts.SpillDir = dir
	copts.Window = 2
	c, err := NewClient(copts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c.OpenSession(600)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(12<<10, 6)
	streamAll(t, sw, payload)
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := sw.Result()
	if res.Status != StatusOK {
		t.Fatalf("status = %d (%s), want OK", res.Status, res.Reason)
	}
	if res.Spilled == 0 {
		t.Error("expected some chunks to transit the spill file")
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Sessions[600].Data, payload) {
		t.Fatal("spilled session bytes differ")
	}
	// The spill temp file must be gone.
	matches, err := filepath.Glob(filepath.Join(dir, "rrd-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("spill files left behind: %v", matches)
	}
}

// TestMaxSessionsReject: the N+1th tenant is refused cleanly.
func TestMaxSessionsReject(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	sopts := fastServer(jpath)
	sopts.MaxSessions = 1
	s, addr := startServer(t, sopts)
	defer shutdownQuiet(s)

	c, err := NewClient(fastClient(addr), nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c.OpenSession(700)
	if err != nil {
		t.Fatal(err)
	}
	defer closeQuiet(sw)
	if _, err := c.OpenSession(701); !errors.Is(err, ErrRejected) {
		t.Fatalf("second session: want ErrRejected, got %v", err)
	}
}

// TestRetriesExhausted: no server at all — the client gives up with a
// typed error after its capped backoff schedule, never hangs.
func TestRetriesExhausted(t *testing.T) {
	opts := fastClient("127.0.0.1:1") // nothing listens on port 1
	opts.MaxRetries = 3
	c, err := NewClient(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.OpenSession(800); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("want ErrRetriesExhausted, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("gave up after %v; backoff cap is not bounding", elapsed)
	}
}

// TestJournalTornTail tears the last record and proves recovery
// salvages everything before the tear.
func TestJournalTornTail(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	j, err := OpenJournal(jpath, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Session(1, "torn"); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Chunk(1, 0, []byte("first chunk")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Chunk(1, 1, []byte("second chunk")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear: chop into the last record's bytes.
	st, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jpath, st.Size()-30); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatalf("recovery must salvage, got %v", err)
	}
	sess := v.Sessions[1]
	if sess == nil {
		t.Fatal("session lost to the tear")
	}
	if got := string(sess.Data); got != "first chunk" {
		t.Fatalf("salvaged %q, want the first chunk only", got)
	}
	if sess.Chunks != 1 {
		t.Errorf("Chunks = %d, want 1", sess.Chunks)
	}
}

// TestKillRestartRecovery is the acceptance crash drill: rrproc dies
// mid-stream (journal abandoned without a final barrier, tail torn),
// a new rrproc recovers the journal, the still-running client resumes
// against it, and the session commits identical.
func TestKillRestartRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	sopts := fastServer(jpath)
	sopts.FsyncEveryBytes = 2 << 10 // frequent durability for a tight replay window

	s1, err := NewServer(sopts, nil)
	if err != nil {
		t.Fatal(err)
	}
	ln1, err := net.Listen("tcp", sopts.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s1.Serve(ln1) }()

	var addr atomic.Value
	addr.Store(ln1.Addr().String())

	copts := fastClient(ln1.Addr().String())
	c, err := NewClient(copts, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Dial = func(_ string, d time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr.Load().(string), d)
	}
	sw, err := c.OpenSession(900)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(48<<10, 9)
	half := len(payload) / 2
	streamAll(t, sw, payload[:half])

	// Crash server 1: cut the listener and every connection, abandon
	// the journal file handle with no final barrier.
	s1.crashForTest()
	_ = ln1.Close()

	// Tear the journal tail, as a real crash mid-write would.
	st, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 20 {
		if err := os.Truncate(jpath, st.Size()-7); err != nil {
			t.Fatal(err)
		}
	}

	// Restart on the same journal, new port; repoint the client.
	s2, err := NewServer(sopts, nil)
	if err != nil {
		t.Fatalf("restart on recovered journal: %v", err)
	}
	ln2, err := net.Listen("tcp", sopts.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s2.Serve(ln2) }()
	addr.Store(ln2.Addr().String())

	streamAll(t, sw, payload[half:])
	if err := sw.Close(); err != nil {
		t.Fatalf("Close across restart: %v", err)
	}
	if res := sw.Result(); res.Status != StatusOK {
		t.Fatalf("status = %d (%s), want OK across crash+restart", res.Status, res.Reason)
	}
	if err := s2.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	sess := v.Sessions[900]
	if err := sess.Verify(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sess.Data, payload) {
		t.Fatal("recovered session bytes differ from the client's log")
	}
	if crc := crc32.Checksum(payload, castagnoli); crc != sess.LogCRC {
		t.Fatalf("committed CRC %08x != payload CRC %08x", sess.LogCRC, crc)
	}
}

// crashForTest simulates a hard kill: connections cut, journal file
// handle closed with no barrier (anything past the last fsync'd
// segment is at the filesystem's mercy).
func (s *Server) crashForTest() {
	s.mu.Lock()
	s.draining = true
	s.closed = true
	for nc := range s.conns {
		closeConn(nc)
	}
	s.mu.Unlock()
	s.jmu.Lock()
	_ = s.jr.f.Close()
	s.jmu.Unlock()
}

func shutdownQuiet(s *Server)      { _ = s.Shutdown() }
func closeQuiet(sw *SessionWriter) { _ = sw.Close() }

// TestTenantMismatchRejected pins the session-ID collision guard: two
// rrd hosts whose clock-derived IDs collide must not be silently
// merged into one stream (the second client's chunks would ack as
// duplicates and vanish, and its commit could poison the first
// session's verdict). The second hello is rejected instead.
func TestTenantMismatchRejected(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	s, addr := startServer(t, fastServer(jpath))
	defer shutdownQuiet(s)

	c1, err := NewClient(fastClient(addr), nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c1.OpenSession(42)
	if err != nil {
		t.Fatal(err)
	}
	defer closeQuiet(sw)

	copts := fastClient(addr)
	copts.Tenant = "other-host"
	copts.MaxRetries = 1
	c2, err := NewClient(copts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.OpenSession(42); !errors.Is(err, ErrRejected) {
		t.Fatalf("colliding session from another tenant: want ErrRejected, got %v", err)
	}

	// The first session is unharmed by the collision attempt.
	streamAll(t, sw, testPayload(4<<10, 42))
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if res := sw.Result(); res.Status != StatusOK {
		t.Fatalf("status = %d (%s), want OK", res.Status, res.Reason)
	}
}

// TestDropPolicyReconnectsAfterReset: a transient connection reset
// under the Drop policy must not tombstone the rest of the session —
// the seal/pump path owes the transport one (rate-limited, never
// sleeping) reconnect attempt before shedding. With a healthy server
// one cut therefore still lands an identical session.
func TestDropPolicyReconnectsAfterReset(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	s, addr := startServer(t, fastServer(jpath))

	copts := fastClient(addr)
	copts.Policy = Drop
	c, err := NewClient(copts, nil)
	if err != nil {
		t.Fatal(err)
	}
	var cur atomic.Pointer[net.Conn]
	base := c.Dial
	c.Dial = func(a string, d time.Duration) (net.Conn, error) {
		nc, err := base(a, d)
		if err == nil {
			cur.Store(&nc)
		}
		return nc, err
	}
	sw, err := c.OpenSession(43)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(32<<10, 43)
	half := len(payload) / 2
	streamAll(t, sw, payload[:half])
	if ncp := cur.Load(); ncp != nil {
		closeConn(*ncp) // transient reset mid-session
	}
	streamAll(t, sw, payload[half:])
	if err := sw.Close(); err != nil {
		t.Fatalf("Close after reset: %v", err)
	}
	res := sw.Result()
	if res.Status != StatusOK || res.Dropped != 0 {
		t.Fatalf("status = %d, dropped = %d (%s); want OK with nothing shed after one reset",
			res.Status, res.Dropped, res.Reason)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Sessions[43].Data, payload) {
		t.Fatal("session bytes differ after reset recovery")
	}
}

// TestAbortLeavesSessionUncommitted: a producer that fails upstream
// mid-stream must abort, and the journal must record the session as
// uncommitted — never as a committed, healthy-looking truncation.
func TestAbortLeavesSessionUncommitted(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.rrjl")
	s, addr := startServer(t, fastServer(jpath))

	c, err := NewClient(fastClient(addr), nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c.OpenSession(44)
	if err != nil {
		t.Fatal(err)
	}
	streamAll(t, sw, testPayload(8<<10, 44)) // a truncated prefix
	sw.Abort()
	if _, err := sw.Write([]byte("x")); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("Write after Abort: want ErrWriterClosed, got %v", err)
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close after Abort must not report a clean session")
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	v, err := ReadJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	sess := v.Sessions[44]
	if sess == nil {
		t.Fatal("aborted session absent from journal (its prefix should persist for resume)")
	}
	if sess.Committed {
		t.Fatalf("aborted session journaled as committed (status %d)", sess.Status)
	}
}

// TestDurablePromotionSnapshotExcludesLaterAppends pins the
// durable-means-fsynced contract against the promotion race: a chunk
// another session journals between a barrier and that barrier's
// promotion sweep must NOT be marked durable by the sweep — it is not
// fsync-covered, and a crash before the next barrier would lose it
// after the client already freed its copy.
func TestDurablePromotionSnapshotExcludesLaterAppends(t *testing.T) {
	sopts := fastServer(filepath.Join(t.TempDir(), "j.rrjl"))
	sopts.FsyncEveryBytes = 1 // every append barriers
	s, err := NewServer(sopts, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownQuiet(s)
	a, rej := s.adoptSession(helloMsg{Proto: ProtoVersion, Session: 1, Tenant: "a"})
	if a == nil {
		t.Fatal(rej)
	}
	b, rej := s.adoptSession(helloMsg{Proto: ProtoVersion, Session: 2, Tenant: "b"})
	if b == nil {
		t.Fatal(rej)
	}

	snapA, err := s.journalChunk(1, 0, []byte("chunk a0")) // barriers
	if err != nil {
		t.Fatal(err)
	}
	if snapA == nil {
		t.Fatal("expected a snapshot from the barrier-triggering append")
	}
	// Session 2 appends AFTER the barrier, before the sweep runs.
	snapB, err := s.journalChunk(2, 0, []byte("chunk b0"))
	if err != nil {
		t.Fatal(err)
	}
	s.promoteDurable(snapA)
	if got := b.durable.Load(); got != 0 {
		t.Fatalf("sweep marked %d un-fsynced chunk(s) of session 2 durable", got)
	}
	if got := a.durable.Load(); got != 1 {
		t.Fatalf("session 1 durable = %d, want 1", got)
	}
	// The newer snapshot promotes B; re-applying the stale one must
	// not rewind anything (sweeps run unordered outside jmu).
	s.promoteDurable(snapB)
	if got := b.durable.Load(); got != 1 {
		t.Fatalf("session 2 durable = %d after its own barrier, want 1", got)
	}
	s.promoteDurable(snapA)
	if got := b.durable.Load(); got != 1 {
		t.Fatalf("stale snapshot rewound session 2 durable to %d", got)
	}
}

// TestIdleFlushBreaksDurabilityDeadlock pins the group-commit wedge:
// with FsyncEveryBytes larger than the window's worth of journal
// bytes, the byte-threshold fsync alone never fires once the window
// fills (window full -> no new chunks -> threshold never reached ->
// durable never advances -> window never drains). The server's
// heartbeat-triggered idle flush must break the cycle.
func TestIdleFlushBreaksDurabilityDeadlock(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j.rrjl")
	sopts := fastServer(jpath)
	sopts.FsyncEveryBytes = 1 << 20 // far beyond the whole stream
	s, addr := startServer(t, sopts)
	defer shutdownQuiet(s)

	copts := fastClient(addr)
	copts.ChunkSize = 512
	copts.Window = 4 // window bytes (2K) << fsync threshold
	c, err := NewClient(copts, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := c.OpenSession(606)
	if err != nil {
		t.Fatal(err)
	}
	payload := testPayload(16<<10, 6) // 32 chunks, 8 windows deep
	start := time.Now()
	streamAll(t, sw, payload)
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := sw.Result()
	if res.Status != StatusOK {
		t.Fatalf("status = %d (%s), want OK", res.Status, res.Reason)
	}
	if res.Retries != 0 {
		t.Errorf("took %d retries; the idle flush should make progress without reconnects", res.Retries)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("stream took %v; durability stalls should resolve at heartbeat cadence", d)
	}
}
