package rrnet

import (
	"errors"
	"fmt"
	"time"
)

// BackpressurePolicy selects what a SessionWriter does when its
// bounded in-flight window is full and the connection cannot drain it
// fast enough (a slow or dead rrproc).
type BackpressurePolicy int

const (
	// Block stalls the producer until the window drains. Recording
	// slows but no data is lost; this is the default.
	Block BackpressurePolicy = iota
	// Drop sheds the oldest unsent chunk and records a degradation:
	// the dropped seq is reported in the commit, so the server journals
	// the session as degraded-with-report, never silently short.
	Drop
	// Spill diverts chunks to a local spill file and replays them once
	// the window drains. Order is preserved: once spilling starts, all
	// new chunks spill until the backlog is empty.
	Spill
)

func (p BackpressurePolicy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	case Spill:
		return "spill"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseBackpressure parses a policy name as accepted by rrd -queue-policy.
func ParseBackpressure(s string) (BackpressurePolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop":
		return Drop, nil
	case "spill":
		return Spill, nil
	}
	return 0, fmt.Errorf("rrnet: unknown backpressure policy %q (want block, drop or spill)", s)
}

// ClientOptions configures a Client (the rrd side).
type ClientOptions struct {
	// Addr is the rrproc address (host:port).
	Addr string
	// Tenant identifies the recording fleet member (free-form label).
	Tenant string

	// ChunkSize is the target bytes per wire chunk.
	ChunkSize int
	// Window bounds the in-flight ring: chunks buffered but not yet
	// cumulatively acked. When full, Policy applies.
	Window int
	// Policy is the slow-consumer backpressure policy.
	Policy BackpressurePolicy
	// SpillDir is where Spill policy writes its overflow file
	// (required iff Policy == Spill).
	SpillDir string

	// MaxRetries caps reconnect attempts per failure burst (attempts
	// reset after any successful ack progress). 0 means DefaultMaxRetries.
	MaxRetries int
	// BackoffBase and BackoffCap bound the exponential reconnect
	// backoff (base*2^attempt, capped, plus deterministic jitter).
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// DialTimeout bounds one connection attempt; FrameTimeout bounds
	// one frame write/read on an established connection.
	DialTimeout  time.Duration
	FrameTimeout time.Duration
	// HeartbeatEvery is the idle-connection heartbeat interval.
	HeartbeatEvery time.Duration
	// AckStall forces a reconnect when no ack progress happens for
	// this long while chunks are in flight — the recovery path for
	// frames silently lost in transit.
	AckStall time.Duration
	// DropGrace is how long the Drop policy lets the producer pause
	// for ack progress before shedding a chunk: a burst of writes on a
	// healthy transport drains instead of shedding, while a genuinely
	// stalled consumer still costs at most DropGrace per chunk.
	DropGrace time.Duration

	// Seed drives the deterministic jitter PRNG. Zero seeds from the
	// session ID so tests replay byte-identically.
	Seed uint64
}

// Defaults for zero-valued ClientOptions fields.
const (
	DefaultChunkSize      = 64 << 10
	DefaultWindow         = 32
	DefaultMaxRetries     = 8
	DefaultBackoffBase    = 50 * time.Millisecond
	DefaultBackoffCap     = 5 * time.Second
	DefaultDialTimeout    = 5 * time.Second
	DefaultFrameTimeout   = 10 * time.Second
	DefaultHeartbeatEvery = 2 * time.Second
	DefaultAckStall       = 3 * time.Second
	DefaultDropGrace      = 20 * time.Millisecond
)

// ErrBadOptions tags every options-validation failure.
var ErrBadOptions = errors.New("rrnet: invalid options")

// withDefaults fills zero fields; Validate rejects what defaults
// cannot repair.
func (o ClientOptions) withDefaults() ClientOptions {
	if o.ChunkSize == 0 {
		o.ChunkSize = DefaultChunkSize
	}
	if o.Window == 0 {
		o.Window = DefaultWindow
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = DefaultBackoffBase
	}
	if o.BackoffCap == 0 {
		o.BackoffCap = DefaultBackoffCap
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.FrameTimeout == 0 {
		o.FrameTimeout = DefaultFrameTimeout
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if o.AckStall == 0 {
		o.AckStall = DefaultAckStall
	}
	if o.DropGrace == 0 {
		o.DropGrace = DefaultDropGrace
	}
	return o
}

// Validate rejects unusable options. Negative values are never
// "disabled" — they are config typos (the NMICap lesson: a zero or
// negative bound that silently disables a limit becomes a divide-by-
// zero or an unbounded queue three layers down).
func (o ClientOptions) Validate() error {
	o = o.withDefaults()
	if o.Addr == "" {
		return fmt.Errorf("%w: Addr is empty", ErrBadOptions)
	}
	if o.ChunkSize < 0 || o.ChunkSize > MaxWirePayload-16 {
		return fmt.Errorf("%w: ChunkSize %d (want 1..%d)", ErrBadOptions, o.ChunkSize, MaxWirePayload-16)
	}
	if o.Window < 0 {
		return fmt.Errorf("%w: Window %d is negative", ErrBadOptions, o.Window)
	}
	if o.MaxRetries < 0 {
		return fmt.Errorf("%w: MaxRetries %d is negative", ErrBadOptions, o.MaxRetries)
	}
	if o.BackoffBase < 0 || o.BackoffCap < 0 {
		return fmt.Errorf("%w: negative backoff (base %v, cap %v)", ErrBadOptions, o.BackoffBase, o.BackoffCap)
	}
	if o.BackoffCap < o.BackoffBase {
		return fmt.Errorf("%w: BackoffCap %v below BackoffBase %v", ErrBadOptions, o.BackoffCap, o.BackoffBase)
	}
	if o.DialTimeout < 0 || o.FrameTimeout < 0 || o.HeartbeatEvery < 0 || o.AckStall < 0 || o.DropGrace < 0 {
		return fmt.Errorf("%w: negative timeout", ErrBadOptions)
	}
	if o.Policy < Block || o.Policy > Spill {
		return fmt.Errorf("%w: unknown backpressure policy %d", ErrBadOptions, int(o.Policy))
	}
	if o.Policy == Spill && o.SpillDir == "" {
		return fmt.Errorf("%w: Spill policy needs SpillDir", ErrBadOptions)
	}
	return nil
}

// ServerOptions configures a Server (the rrproc side).
type ServerOptions struct {
	// Addr is the listen address (host:port or :port).
	Addr string
	// JournalPath is the append-only journal file.
	JournalPath string

	// MaxSessions bounds concurrently open sessions; further hellos
	// are rejected (the client reports StatusReject cleanly).
	MaxSessions int
	// ReorderWindow bounds the out-of-order chunk buffer per session:
	// chunks at most this far ahead of contig are held, further ones
	// dropped (the client's ack-stall reconnect re-delivers them).
	ReorderWindow int
	// FrameTimeout bounds one frame read on an established connection;
	// an idle connection past it (no heartbeat) is closed.
	FrameTimeout time.Duration
	// DrainTimeout bounds the graceful SIGTERM drain.
	DrainTimeout time.Duration

	// FsyncEveryBytes inserts a journal segment boundary (segment
	// record + fsync) after at least this many bytes.
	FsyncEveryBytes int

	// SlowConsumer, when >0, sleeps this long per chunk before acking —
	// a chaos-testing knob that provokes client backpressure.
	SlowConsumer time.Duration
}

// Defaults for zero-valued ServerOptions fields.
const (
	DefaultMaxSessions     = 64
	DefaultReorderWindow   = 64
	DefaultDrainTimeout    = 10 * time.Second
	DefaultFsyncEveryBytes = 1 << 20
)

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxSessions == 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	if o.ReorderWindow == 0 {
		o.ReorderWindow = DefaultReorderWindow
	}
	if o.FrameTimeout == 0 {
		o.FrameTimeout = DefaultFrameTimeout
	}
	if o.DrainTimeout == 0 {
		o.DrainTimeout = DefaultDrainTimeout
	}
	if o.FsyncEveryBytes == 0 {
		o.FsyncEveryBytes = DefaultFsyncEveryBytes
	}
	return o
}

// Validate rejects unusable server options.
func (o ServerOptions) Validate() error {
	o = o.withDefaults()
	if o.Addr == "" {
		return fmt.Errorf("%w: Addr is empty", ErrBadOptions)
	}
	if o.JournalPath == "" {
		return fmt.Errorf("%w: JournalPath is empty", ErrBadOptions)
	}
	if o.MaxSessions < 0 {
		return fmt.Errorf("%w: MaxSessions %d is negative", ErrBadOptions, o.MaxSessions)
	}
	if o.ReorderWindow < 0 {
		return fmt.Errorf("%w: ReorderWindow %d is negative", ErrBadOptions, o.ReorderWindow)
	}
	if o.FrameTimeout < 0 || o.DrainTimeout < 0 || o.SlowConsumer < 0 {
		return fmt.Errorf("%w: negative timeout", ErrBadOptions)
	}
	if o.FsyncEveryBytes < 0 {
		return fmt.Errorf("%w: FsyncEveryBytes %d is negative", ErrBadOptions, o.FsyncEveryBytes)
	}
	return nil
}
