package rrnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// The journal is rrproc's single append-only file of record. Every
// record is a CRC32C frame in the shared wire layout, so recovery is
// the same salvage-by-resync scan the log decoder uses: a torn tail
// (crash mid-write), a damaged record, or garbage between records
// costs exactly the unreadable bytes, never the file.
//
//	journal := magic "RRJL" | version u16 (LE) | pad u16
//	         | frame...
//
// Record frames (types start at 0x30, clear of wire messages):
//
//	jr-session (0x30): session u64 | tenant str
//	jr-chunk   (0x31): session u64 | seq u64 | data...
//	jr-commit  (0x32): session u64 | status u8 | chunks u64 | loglen u64
//	                   | logcrc u32 | ndrop u64 | missing u64 | reason str
//	jr-segment (0x33): fileoff u64      — written immediately before
//	                   each fsync; marks everything above it durable
//
// Invariants the recovery scan relies on:
//
//  1. jr-chunk records for one session appear in seq order with no
//     gaps and no duplicates — the server journals a chunk only when
//     it extends the session's contiguous prefix.
//  2. jr-commit is fsync'd before the commit-ack leaves the server,
//     so an acked commit is never lost.
//  3. A session's chunks never need reordering at read time; export
//     is plain concatenation.
var journalMagic = [4]byte{'R', 'R', 'J', 'L'}

// JournalVersion is the on-disk journal format version.
const JournalVersion = 1

const (
	JrSession MsgType = 0x30
	JrChunk   MsgType = 0x31
	JrCommit  MsgType = 0x32
	JrSegment MsgType = 0x33
)

// ErrBadJournal reports a file that is not a journal at all (wrong
// magic/version). Damage past the header is salvaged, not fatal.
var ErrBadJournal = errors.New("rrnet: not a journal file")

// Journal is the append side. Writes are serialized; a segment
// boundary (jr-segment record + fsync) lands after every
// fsyncEvery bytes and on every commit.
type Journal struct {
	f          *os.File
	off        int64
	fsyncEvery int
	sinceSync  int
}

// OpenJournal opens (creating or appending) the journal at path.
func OpenJournal(path string, fsyncEvery int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		closeFile(f)
		return nil, err
	}
	if fsyncEvery <= 0 {
		fsyncEvery = DefaultFsyncEveryBytes
	}
	j := &Journal{f: f, fsyncEvery: fsyncEvery}
	if st.Size() == 0 {
		var hdr [8]byte
		copy(hdr[:4], journalMagic[:])
		hdr[4] = JournalVersion
		if _, err := f.Write(hdr[:]); err != nil {
			closeFile(f)
			return nil, err
		}
		if err := f.Sync(); err != nil {
			closeFile(f)
			return nil, err
		}
		j.off = int64(len(hdr))
		return j, nil
	}
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || [4]byte(hdr[:4]) != journalMagic || hdr[4] != JournalVersion {
		closeFile(f)
		return nil, fmt.Errorf("%w: %s", ErrBadJournal, path)
	}
	// Append past the existing tail — including a torn one. The next
	// record's sync word lets the recovery scan skip the tear.
	off, err := f.Seek(0, 2)
	if err != nil {
		closeFile(f)
		return nil, err
	}
	j.off = off
	return j, nil
}

// append writes one record frame; returns true when it triggered a
// segment fsync (everything written so far is now durable).
func (j *Journal) append(t MsgType, payload []byte) (synced bool, err error) {
	buf := appendFrame(nil, t, payload)
	if _, err := j.f.Write(buf); err != nil {
		return false, err
	}
	j.off += int64(len(buf))
	j.sinceSync += len(buf)
	if j.sinceSync >= j.fsyncEvery {
		return true, j.barrier()
	}
	return false, nil
}

// barrier writes a jr-segment record and fsyncs.
func (j *Journal) barrier() error {
	var p wirePayload
	p.u64(uint64(j.off))
	buf := appendFrame(nil, JrSegment, p.Bytes())
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	j.off += int64(len(buf))
	j.sinceSync = 0
	return j.f.Sync()
}

// Session journals a session-open record.
func (j *Journal) Session(id uint64, tenant string) (bool, error) {
	var p wirePayload
	p.u64(id)
	p.str(tenant)
	return j.append(JrSession, p.Bytes())
}

// Chunk journals one in-order chunk.
func (j *Journal) Chunk(id, seq uint64, data []byte) (bool, error) {
	var p wirePayload
	p.Grow(16 + len(data))
	p.u64(id)
	p.u64(seq)
	p.Write(data)
	return j.append(JrChunk, p.Bytes())
}

// Commit journals the session verdict and forces a segment barrier:
// an acked commit is always durable.
func (j *Journal) Commit(id uint64, status uint8, chunks, logLen uint64, logCRC uint32, nDrop, missing uint64, reason string) error {
	var p wirePayload
	p.u64(id)
	p.u8(status)
	p.u64(chunks)
	p.u64(logLen)
	p.u32(logCRC)
	p.u64(nDrop)
	p.u64(missing)
	p.str(reason)
	if _, err := j.append(JrCommit, p.Bytes()); err != nil {
		return err
	}
	return j.barrier()
}

// Close barriers and closes the file.
func (j *Journal) Close() error {
	if j.sinceSync > 0 {
		if err := j.barrier(); err != nil {
			closeFile(j.f)
			return err
		}
	}
	return j.f.Close()
}

// JournalSession is one session's recovered state.
type JournalSession struct {
	ID     uint64
	Tenant string
	Data   []byte // in-order concatenated chunk payloads
	Chunks uint64 // chunk records applied (== next expected seq)

	// Durable marks how many of Chunks were covered by a segment
	// barrier — the contig a restarted server may safely re-offer.
	Durable uint64

	Committed bool
	Status    uint8
	LogLen    uint64
	LogCRC    uint32
	NDrop     uint64
	Missing   uint64
	Reason    string
}

// JournalView is a recovered journal.
type JournalView struct {
	Sessions map[uint64]*JournalSession
	Order    []uint64 // session IDs in first-seen order

	// Salvage report from the scan.
	SkippedBytes  int64
	DroppedFrames int
	DupChunks     int // benign re-sends after a server restart
	TornTail      bool
}

// ReadJournal scans (and salvages) a journal file.
//
// The scan is byte-accurate: on a CRC failure or an impossible length
// it rewinds to one byte past the candidate sync word and hunts
// again, exactly like the log decoder. This matters for the
// crash-and-restart shape, where a torn record sits in the MIDDLE of
// the file (the restarted server appended past it): a reader that
// trusted the torn header's length would swallow the next intact
// records, and the session's contiguity rule would then discard the
// entire re-streamed tail.
func ReadJournal(path string) (*JournalView, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 8 || [4]byte(raw[:4]) != journalMagic || raw[4] != JournalVersion {
		return nil, fmt.Errorf("%w: %s", ErrBadJournal, path)
	}
	v := &JournalView{Sessions: make(map[uint64]*JournalSession)}
	for _, rec := range scanFrames(raw[8:], v) {
		t, payload := rec.t, rec.payload
		s := &byteScanner{data: payload}
		switch t {
		case JrSession:
			id := s.u64()
			tenant := s.str(MaxTenantLen)
			if s.short {
				v.DroppedFrames++
				continue
			}
			sess := v.session(id)
			if sess.Tenant == "" {
				sess.Tenant = tenant
			}
		case JrChunk:
			id, seq := s.u64(), s.u64()
			if s.short {
				v.DroppedFrames++
				continue
			}
			data := s.take(s.remaining())
			sess := v.session(id)
			// Invariant 1 (in-order) holds per server lifetime, but a
			// restart legitimately re-journals chunks the client
			// re-sent past the recovery point — those arrive as exact
			// duplicates (seq < Chunks) and are skipped. A seq AHEAD
			// of the prefix means a record was destroyed; chunks past
			// a real gap cannot be placed and count as dropped.
			switch {
			case seq == sess.Chunks:
				sess.Data = append(sess.Data, data...)
				sess.Chunks++
			case seq < sess.Chunks:
				v.DupChunks++
			default:
				v.DroppedFrames++
			}
		case JrCommit:
			id := s.u64()
			status := s.u8()
			chunks, logLen := s.u64(), s.u64()
			logCRC := s.u32()
			nDrop, missing := s.u64(), s.u64()
			reason := s.str(MaxReasonLen)
			if s.short {
				v.DroppedFrames++
				continue
			}
			sess := v.session(id)
			sess.Committed = true
			sess.Status = status
			sess.LogLen, sess.LogCRC = logLen, logCRC
			sess.NDrop, sess.Missing = nDrop, missing
			sess.Reason = reason
			_ = chunks
		case JrSegment:
			// Everything applied so far was fsync-covered.
			for _, sess := range v.Sessions {
				sess.Durable = sess.Chunks
			}
		default:
			v.DroppedFrames++
		}
	}
	return v, nil
}

type journalRec struct {
	t       MsgType
	payload []byte
}

// scanFrames walks raw with byte-accurate resync, returning the
// intact record frames and folding the salvage accounting into v.
func scanFrames(raw []byte, v *JournalView) []journalRec {
	var recs []journalRec
	pos := 0
	for pos+13 <= len(raw) {
		if raw[pos] != wireSync[0] || raw[pos+1] != wireSync[1] ||
			raw[pos+2] != wireSync[2] || raw[pos+3] != wireSync[3] {
			pos++
			v.SkippedBytes++
			continue
		}
		length := binary.LittleEndian.Uint32(raw[pos+5:])
		if length > MaxWirePayload {
			pos++
			v.SkippedBytes++
			continue
		}
		end := pos + 13 + int(length)
		if end > len(raw) {
			// Extends past EOF: a torn tail (or a lying length).
			// Mark the tear but keep hunting — with append-after-
			// crash the file continues past a mid-file tear.
			v.TornTail = true
			pos++
			v.SkippedBytes++
			continue
		}
		crc := crc32.Update(0, castagnoli, raw[pos+4:pos+9])
		crc = crc32.Update(crc, castagnoli, raw[pos+9:end-4])
		if crc != binary.LittleEndian.Uint32(raw[end-4:]) {
			v.DroppedFrames++
			pos++
			v.SkippedBytes++
			continue
		}
		recs = append(recs, journalRec{t: MsgType(raw[pos+4]), payload: raw[pos+9 : end-4]})
		pos = end
	}
	if pos < len(raw) {
		v.SkippedBytes += int64(len(raw) - pos)
		v.TornTail = true
	}
	return recs
}

func (v *JournalView) session(id uint64) *JournalSession {
	sess := v.Sessions[id]
	if sess == nil {
		sess = &JournalSession{ID: id}
		v.Sessions[id] = sess
		v.Order = append(v.Order, id)
	}
	return sess
}

// SortedIDs returns the session IDs in ascending order (for stable
// query output; Order preserves arrival order instead).
func (v *JournalView) SortedIDs() []uint64 {
	ids := make([]uint64, 0, len(v.Sessions))
	for id := range v.Sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	return ids
}

// Export writes one session's reassembled log bytes to w. For a
// committed StatusOK session this is byte-identical to what the
// client's WriteLogV3 produced locally (verified: rolling CRC).
func (v *JournalView) Export(id uint64, w io.Writer) error {
	sess := v.Sessions[id]
	if sess == nil {
		return fmt.Errorf("rrnet: no session %d in journal", id)
	}
	_, err := w.Write(sess.Data)
	return err
}

// Verify cross-checks a committed session's reassembled bytes against
// the commit record's client-side CRC. Degraded sessions (NDrop > 0)
// are not verifiable — the client CRC covers bytes it shed.
func (sess *JournalSession) Verify() error {
	if !sess.Committed {
		return fmt.Errorf("rrnet: session %d has no commit record", sess.ID)
	}
	if sess.NDrop > 0 {
		return fmt.Errorf("rrnet: session %d is degraded (%d chunks shed); CRC not comparable", sess.ID, sess.NDrop)
	}
	if uint64(len(sess.Data)) != sess.LogLen {
		return fmt.Errorf("rrnet: session %d: journal holds %d bytes, commit declared %d", sess.ID, len(sess.Data), sess.LogLen)
	}
	if crc := crc32.Checksum(sess.Data, castagnoli); crc != sess.LogCRC {
		return fmt.Errorf("rrnet: session %d: journal CRC %08x != committed CRC %08x", sess.ID, crc, sess.LogCRC)
	}
	return nil
}

// closeFile closes a read-side or already-doomed file handle.
func closeFile(f *os.File) {
	_ = f.Close()
}
