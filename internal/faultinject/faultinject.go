// Package faultinject is a deterministic, seeded fault-injection
// subsystem: the chaos engine behind `-faults`. An Injector holds a
// set of named fault points, each with its own independent PRNG stream
// derived from (seed, point name), so firing decisions are reproducible
// regardless of the order in which different points are consulted.
//
// Every method is nil-safe: a nil *Injector never fires, costs one
// predicted branch, and lets production code hold an always-present
// handle without guarding call sites — the same discipline package
// telemetry uses. With a nil (or empty) injector the instrumented
// pipeline is byte-identical to the uninstrumented one (tested in
// internal/experiments).
//
// Fault points model the hostile conditions the RelaxReplay pipeline
// must survive (see DESIGN.md "Fault model"): corrupted or truncated
// log bytes, short reads/writes, duplicated log frames, a recorder
// that crashes before its last log-buffer flush, and an interconnect
// that delays or drops messages.
package faultinject

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"relaxreplay/internal/telemetry"
)

// Point names one fault-injection site.
type Point string

// The named fault points. Byte-level log faults (bitflip, truncate,
// shortwrite) apply in Corrupt; shortread applies in WrapReader;
// dupframe is consulted by the replaylog v2 encoder per frame;
// flush.crash by core.Session at finalize; the ic.* points by the
// interconnect ring per message event.
const (
	LogBitFlip    Point = "log.bitflip"    // flip one random bit of the encoded log
	LogTruncate   Point = "log.truncate"   // cut the encoded log at a random offset
	LogShortWrite Point = "log.shortwrite" // writer crash: keep only a random prefix
	LogShortRead  Point = "log.shortread"  // reader stops early with ErrUnexpectedEOF
	LogDupFrame   Point = "log.dupframe"   // encoder emits one frame twice
	FlushCrash    Point = "flush.crash"    // recorder crash before the final log flush
	ICDelay       Point = "ic.delay"       // interconnect message injection delayed
	ICDrop        Point = "ic.drop"        // one interconnect message silently dropped

	// Network stream faults, consulted by the rrnet fault transport
	// (internal/rrnet.WrapFaultConn) once per wire frame written. They
	// attack the live rrd→rrproc stream rather than log bytes at rest.
	NetDrop    Point = "net.drop"         // one wire frame silently vanishes in transit
	NetDelay   Point = "net.delay"        // a wire frame's delivery is delayed
	NetReset   Point = "net.reset"        // the connection is reset mid-stream
	NetPartial Point = "net.partial"      // the connection dies mid-frame (a prefix was delivered)
	NetReorder Point = "net.reorder-conn" // adjacent wire frames are delivered out of order
)

// Points returns every known fault point in deterministic order.
func Points() []Point {
	return []Point{
		LogBitFlip, LogTruncate, LogShortWrite, LogShortRead,
		LogDupFrame, FlushCrash, ICDelay, ICDrop,
		NetDrop, NetDelay, NetReset, NetPartial, NetReorder,
	}
}

// NetPoints returns the network-stream subset of the registry: the
// points the rrnet fault transport consults. The file-oriented chaos
// matrix excludes them (they never fire without a live stream) and the
// rrd/rrproc chaos grid is built from them.
func NetPoints() []Point {
	return []Point{NetDrop, NetDelay, NetReset, NetPartial, NetReorder}
}

// IsNetPoint reports whether p is one of the network-stream points.
func IsNetPoint(p Point) bool {
	for _, q := range NetPoints() {
		if p == q {
			return true
		}
	}
	return false
}

// pointCfg is the static firing policy of one point. One-shot points
// arm on the N-th consultation (N drawn once from the PRNG inside
// horizon) and fire exactly once; probabilistic points fire on each
// consultation with probability prob.
type pointCfg struct {
	oneShot bool
	horizon uint64  // one-shot: arming window in consultations
	prob    float64 // probabilistic: per-consultation firing chance
}

// defaultCfg returns the default policy for a point. Log-byte faults
// arm on the first consultation (there is exactly one Corrupt/encode
// pass per run); interconnect faults spread over the message stream.
func defaultCfg(p Point) pointCfg {
	switch p {
	case ICDelay:
		// Dense enough to land even in the scale-1 chaos-smoke runs
		// (hundreds of ring injections); a delay only perturbs timing,
		// so density costs nothing in larger runs.
		return pointCfg{prob: 1.0 / 64}
	case ICDrop:
		return pointCfg{oneShot: true, horizon: 2048}
	case FlushCrash:
		return pointCfg{oneShot: true, horizon: 1}
	case NetDelay:
		// Per-frame delivery delay: frequent, only perturbs timing.
		return pointCfg{prob: 1.0 / 8}
	case NetDrop, NetReset, NetPartial, NetReorder:
		// One hit somewhere in the first frames of a stream: small
		// sessions still see the fault, and the retry/resume machinery
		// has a realistic mid-stream incident to recover from.
		return pointCfg{oneShot: true, horizon: 64}
	default: // log.* byte faults: one consultation per encode
		return pointCfg{oneShot: true, horizon: 1}
	}
}

// pointState is the mutable per-point runtime state.
type pointState struct {
	cfg     pointCfg
	rng     splitmix // independent stream per point
	armedAt uint64   // one-shot: consultation index that fires
	calls   uint64
	fired   uint64
}

// Injector is a set of enabled fault points with deterministic firing
// decisions. The zero of usefulness is nil: never fires. An Injector
// is safe for concurrent use, but determinism additionally requires
// that consultations of a single point happen in a deterministic
// order — give each concurrent pipeline its own Fork.
type Injector struct {
	mu     sync.Mutex
	seed   uint64
	label  string
	points map[Point]*pointState

	tel *telemetry.Counter // faults_injected, resolved lazily
}

// splitmix is a splitmix64 PRNG: tiny, seedable, stable across Go
// releases (unlike math/rand's unspecified stream).
type splitmix uint64

func (s *splitmix) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hash64 mixes a string into a seed (FNV-1a then splitmix finalizer).
func hash64(seed uint64, s string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	sm := splitmix(h)
	return sm.next()
}

// New builds an injector with the given points enabled at their
// default policies. An empty point list returns nil (disabled).
func New(seed uint64, points ...Point) *Injector {
	if len(points) == 0 {
		return nil
	}
	in := &Injector{seed: seed, points: make(map[Point]*pointState, len(points))}
	for _, p := range points {
		in.enable(p, defaultCfg(p))
	}
	return in
}

func (in *Injector) enable(p Point, cfg pointCfg) {
	st := &pointState{cfg: cfg, rng: splitmix(hash64(in.seed, in.label+"|"+string(p)))}
	if cfg.oneShot {
		h := cfg.horizon
		if h == 0 {
			h = 1
		}
		st.armedAt = st.rng.next() % h
	}
	in.points[p] = st
}

// Parse builds an injector from a "spec@seed" string:
//
//	default@1              every known point, default policies
//	log.bitflip@7          a single point
//	log.truncate,ic.drop@3 a comma-separated subset
//	none@1  (or "")        disabled (returns nil)
//
// The seed is a decimal uint64 and is required for any enabled spec so
// chaos runs are reproducible by construction.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	at := strings.LastIndex(spec, "@")
	if at < 0 {
		return nil, fmt.Errorf("faultinject: spec %q has no @seed (e.g. %q)", spec, "default@1")
	}
	seed, err := strconv.ParseUint(spec[at+1:], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("faultinject: bad seed in %q: %v", spec, err)
	}
	names := strings.TrimSpace(spec[:at])
	if names == "none" {
		return nil, nil
	}
	if names == "" {
		return nil, fmt.Errorf("faultinject: spec %q names no fault points (use %q to disable)", spec, "none")
	}
	if names == "default" {
		return New(seed, Points()...), nil
	}
	known := make(map[Point]bool)
	for _, p := range Points() {
		known[p] = true
	}
	var pts []Point
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if !known[Point(n)] {
			return nil, fmt.Errorf("faultinject: unknown fault point %q (known: %s)", n, pointList())
		}
		pts = append(pts, Point(n))
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q names no fault points", spec)
	}
	return New(seed, pts...), nil
}

func pointList() string {
	var ss []string
	for _, p := range Points() {
		ss = append(ss, string(p))
	}
	return strings.Join(ss, ", ")
}

// Fork derives a child injector with the same enabled points but an
// independent, label-derived PRNG stream. Concurrent pipelines (e.g.
// the chaos matrix cells) each Fork so decisions stay deterministic
// regardless of scheduling.
func (in *Injector) Fork(label string) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	child := &Injector{seed: hash64(in.seed, label), label: label,
		points: make(map[Point]*pointState, len(in.points))}
	for p, st := range in.points {
		child.enable(p, st.cfg)
	}
	return child
}

// Restrict returns a Fork with only the given points enabled (points
// not enabled on the parent stay disabled). Used by the chaos matrix
// to isolate one fault per cell. Returns nil when nothing survives.
func (in *Injector) Restrict(label string, points ...Point) *Injector {
	if in == nil {
		return nil
	}
	child := in.Fork(label)
	for p := range child.points {
		keep := false
		for _, k := range points {
			if p == k {
				keep = true
			}
		}
		if !keep {
			delete(child.points, p)
		}
	}
	if len(child.points) == 0 {
		return nil
	}
	return child
}

// SetTelemetry routes a "faults.injected" counter (sharded by nothing;
// shard 0) into reg-backed telemetry. Nil-safe on both sides.
func (in *Injector) SetTelemetry(t *telemetry.Telemetry) {
	if in == nil {
		return
	}
	reg := t.Registry()
	if reg == nil {
		return
	}
	in.mu.Lock()
	in.tel = reg.Counter("faults.injected")
	in.mu.Unlock()
}

// Enabled reports whether the point can ever fire.
func (in *Injector) Enabled(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.points[p] != nil
}

// Fire consults the point and reports whether the fault happens now.
// Deterministic given the seed and the per-point consultation count.
//
//rrlint:hotpath
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.points[p]
	if st == nil {
		return false
	}
	call := st.calls
	st.calls++
	if st.cfg.oneShot {
		if st.fired > 0 || call != st.armedAt {
			return false
		}
	} else {
		// 53-bit uniform in [0,1).
		if float64(st.rng.next()>>11)/(1<<53) >= st.cfg.prob {
			return false
		}
	}
	st.fired++
	in.tel.Inc(0)
	return true
}

// ArmWithin re-arms a one-shot point to fire within the next n
// consultations. Sites that know how many consultations are coming
// (e.g. the log encoder knows its frame count) call this so the fault
// lands inside the run instead of beyond it. No-op for disabled,
// already-fired, or probabilistic points, or n == 0.
func (in *Injector) ArmWithin(p Point, n uint64) {
	if in == nil || n == 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.points[p]
	if st == nil || !st.cfg.oneShot || st.fired > 0 {
		return
	}
	st.armedAt = st.calls + st.rng.next()%n
}

// Rand returns a deterministic value in [0, n) drawn from the point's
// stream (0 when disabled or n == 0). Used by firing sites to pick a
// victim (byte offset, core, interval count) reproducibly.
func (in *Injector) Rand(p Point, n uint64) uint64 {
	if in == nil || n == 0 {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.points[p]
	if st == nil {
		return 0
	}
	return st.rng.next() % n
}

// Counts returns the per-point fired counts (nil when disabled).
func (in *Injector) Counts() map[Point]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Point]uint64, len(in.points))
	for p, st := range in.points {
		if st.fired > 0 {
			out[p] = st.fired
		}
	}
	return out
}

// String describes the fired faults, sorted, e.g.
// "log.bitflip×1, ic.delay×12"; "" when nothing fired.
func (in *Injector) String() string {
	cs := in.Counts()
	if len(cs) == 0 {
		return ""
	}
	var keys []string
	for p := range cs {
		keys = append(keys, string(p))
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s×%d", k, cs[Point(k)]))
	}
	return strings.Join(parts, ", ")
}

// Corrupt applies the enabled byte-level log faults (bitflip,
// truncate, shortwrite) to an encoded log image, returning the
// (possibly shortened) result and human-readable descriptions of what
// was done. The input slice is modified in place for bit flips. With
// no applicable point enabled it returns data unchanged.
func (in *Injector) Corrupt(data []byte) ([]byte, []string) {
	if in == nil || len(data) == 0 {
		return data, nil
	}
	var applied []string
	if in.Fire(LogBitFlip) {
		off := in.Rand(LogBitFlip, uint64(len(data))*8)
		data[off/8] ^= 1 << (off % 8)
		applied = append(applied, fmt.Sprintf("bit-flip at byte %d bit %d", off/8, off%8))
	}
	if in.Fire(LogTruncate) {
		// Keep at least one byte so the decoder sees a torn file, not
		// an empty one (the empty case is separately tested).
		cut := 1 + in.Rand(LogTruncate, uint64(len(data)))
		if cut < uint64(len(data)) {
			data = data[:cut]
			applied = append(applied, fmt.Sprintf("truncated to %d bytes", cut))
		}
	}
	if in.Fire(LogShortWrite) {
		// A crashed writer loses a tail suffix, typically smaller than
		// a truncation: a lost final write of up to 4KiB, clamped so
		// the fault always bites (lose at least 1, keep at least 1).
		window := uint64(4096)
		if w := uint64(len(data) - 1); w < window {
			window = w
		}
		if window > 0 {
			lose := 1 + in.Rand(LogShortWrite, window)
			data = data[:uint64(len(data))-lose]
			applied = append(applied, fmt.Sprintf("short write lost final %d bytes", lose))
		}
	}
	return data, applied
}

// WrapReader applies the log.shortread point: the returned reader
// yields a random-length prefix of r and then fails with
// io.ErrUnexpectedEOF, as a flaky transport would. size, when known
// (> 1), bounds the cut so the fault always bites strictly inside the
// stream; pass 0 for an unknown length (the cut then falls within the
// first 64KiB). Without the point enabled (or with a nil injector) r
// is returned unwrapped.
func (in *Injector) WrapReader(r io.Reader, size int64) io.Reader {
	if in == nil || !in.Enabled(LogShortRead) {
		return r
	}
	if !in.Fire(LogShortRead) {
		return r
	}
	window := uint64(1 << 16)
	if size > 1 {
		window = uint64(size - 1)
	}
	return &shortReader{r: r, remain: int64(1 + in.Rand(LogShortRead, window))}
}

type shortReader struct {
	r      io.Reader
	remain int64
}

func (s *shortReader) Read(p []byte) (int, error) {
	if s.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > s.remain {
		p = p[:s.remain]
	}
	n, err := s.r.Read(p)
	s.remain -= int64(n)
	if err == io.EOF {
		// The underlying stream ended before the cut: not a fault.
		return n, err
	}
	if s.remain <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
