package faultinject

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled(LogBitFlip) || in.Fire(ICDrop) {
		t.Fatal("nil injector fired")
	}
	if in.Rand(ICDelay, 10) != 0 {
		t.Fatal("nil injector drew a value")
	}
	data := []byte{1, 2, 3}
	out, applied := in.Corrupt(data)
	if !bytes.Equal(out, []byte{1, 2, 3}) || applied != nil {
		t.Fatal("nil injector corrupted data")
	}
	r := strings.NewReader("abc")
	if in.WrapReader(r, 0) != io.Reader(r) {
		t.Fatal("nil injector wrapped the reader")
	}
	if in.Fork("x") != nil || in.Restrict("x", LogBitFlip) != nil {
		t.Fatal("nil injector forked non-nil")
	}
	if in.Counts() != nil || in.String() != "" {
		t.Fatal("nil injector reported counts")
	}
}

func TestParse(t *testing.T) {
	for _, spec := range []string{"", "none", "none@3"} {
		in, err := Parse(spec)
		if err != nil || in != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, in, err)
		}
	}
	in, err := Parse("default@1")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Points() {
		if !in.Enabled(p) {
			t.Fatalf("default spec leaves %s disabled", p)
		}
	}
	in, err = Parse("log.bitflip,ic.drop@7")
	if err != nil {
		t.Fatal(err)
	}
	if !in.Enabled(LogBitFlip) || !in.Enabled(ICDrop) || in.Enabled(LogTruncate) {
		t.Fatal("subset spec enabled the wrong points")
	}
	for _, bad := range []string{"default", "bogus.point@1", "default@x", "@1", ",@2"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

// Firing decisions must be a pure function of (seed, point, call #).
func TestDeterminism(t *testing.T) {
	run := func() []bool {
		in, _ := Parse("ic.delay,ic.drop@42")
		var out []bool
		for i := 0; i < 5000; i++ {
			out = append(out, in.Fire(ICDelay))
			out = append(out, in.Fire(ICDrop))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
	// Order independence across points: consulting only one point
	// yields the same stream as interleaving with another.
	in, _ := Parse("ic.delay,ic.drop@42")
	var solo []bool
	for i := 0; i < 5000; i++ {
		solo = append(solo, in.Fire(ICDelay))
	}
	for i := 0; i < 5000; i++ {
		if solo[i] != a[2*i] {
			t.Fatalf("ic.delay decision %d depends on other points' consultations", i)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent, _ := Parse("ic.drop@1")
	a := parent.Fork("cell-a")
	b := parent.Fork("cell-b")
	a2 := parent.Fork("cell-a")
	fires := func(in *Injector) int {
		for i := 0; i < 100000; i++ {
			if in.Fire(ICDrop) {
				return i
			}
		}
		return -1
	}
	fa, fb, fa2 := fires(a), fires(b), fires(a2)
	if fa != fa2 {
		t.Fatalf("same-label forks disagree: %d vs %d", fa, fa2)
	}
	if fa == fb {
		t.Fatalf("different-label forks both fire at %d (suspiciously correlated)", fa)
	}
}

func TestOneShotFiresExactlyOnce(t *testing.T) {
	in := New(9, ICDrop)
	n := 0
	for i := 0; i < 100000; i++ {
		if in.Fire(ICDrop) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("one-shot point fired %d times", n)
	}
	if got := in.Counts()[ICDrop]; got != 1 {
		t.Fatalf("Counts[ic.drop] = %d", got)
	}
	if s := in.String(); s != "ic.drop×1" {
		t.Fatalf("String() = %q", s)
	}
}

func TestCorruptBitFlip(t *testing.T) {
	in := New(3, LogBitFlip)
	orig := bytes.Repeat([]byte{0xAA}, 64)
	data := append([]byte(nil), orig...)
	out, applied := in.Corrupt(data)
	if len(applied) != 1 || len(out) != len(orig) {
		t.Fatalf("applied=%v len=%d", applied, len(out))
	}
	diff := 0
	for i := range out {
		if out[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes changed, want exactly 1", diff)
	}
}

func TestCorruptTruncate(t *testing.T) {
	in := New(5, LogTruncate)
	data := bytes.Repeat([]byte{7}, 4096)
	out, applied := in.Corrupt(data)
	if len(out) >= len(data) && len(applied) != 0 {
		t.Fatalf("truncate reported but kept %d of %d bytes", len(out), len(data))
	}
	if len(out) == 0 {
		t.Fatal("truncate produced an empty log (should keep at least 1 byte)")
	}
}

func TestShortReader(t *testing.T) {
	in := New(11, LogShortRead)
	src := bytes.Repeat([]byte{1}, 1<<17)
	r := in.WrapReader(bytes.NewReader(src), int64(len(src)))
	got, err := io.ReadAll(r)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	if len(got) == 0 || len(got) >= len(src) {
		t.Fatalf("short read returned %d of %d bytes", len(got), len(src))
	}
}

func TestRestrict(t *testing.T) {
	in, _ := Parse("default@1")
	only := in.Restrict("cell", LogBitFlip)
	if !only.Enabled(LogBitFlip) {
		t.Fatal("restricted point disabled")
	}
	for _, p := range Points() {
		if p != LogBitFlip && only.Enabled(p) {
			t.Fatalf("%s survived Restrict", p)
		}
	}
	if in.Restrict("cell") != nil {
		t.Fatal("empty Restrict should be nil")
	}
}

// TestPointsParseRoundTrip cross-checks the registry with the spec
// parser in both directions: every point Points() lists must parse
// back into an injector that enables exactly that point, and
// point-shaped names outside the registry must be rejected. rrlint's
// faultpoint check proves the same property for string literals and
// -faults docs across the tree at lint time; this pins the runtime
// half.
func TestPointsParseRoundTrip(t *testing.T) {
	seen := make(map[Point]bool)
	for _, p := range Points() {
		if seen[p] {
			t.Errorf("Points() lists %q twice", p)
		}
		seen[p] = true
		in, err := Parse(string(p) + "@1")
		if err != nil {
			t.Errorf("registered point %q rejected by Parse: %v", p, err)
			continue
		}
		if !in.Enabled(p) {
			t.Errorf("Parse(%q@1) did not enable %q", p, p)
		}
		for _, q := range Points() {
			if q != p && in.Enabled(q) {
				t.Errorf("Parse(%q@1) also enabled %q", p, q)
			}
		}
		if !strings.Contains(pointList(), string(p)) {
			t.Errorf("pointList() (the parser's error text) omits %q", p)
		}
	}
	for _, typo := range []string{"log.bitflop", "ic.dealy", "flush.crsh"} {
		if _, err := Parse(typo + "@1"); err == nil {
			t.Errorf("typo'd point %q accepted by Parse", typo)
		}
	}
	// The default spec must enable the whole registry.
	in, err := Parse("default@1")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Points() {
		if !in.Enabled(p) {
			t.Errorf("default spec missing registered point %q", p)
		}
	}
}

// TestNetPointsRegistered pins the net.* transport points into the
// registry contract: every NetPoints() entry is a registered Point
// (so the round-trip above covers it), IsNetPoint agrees with the
// slice in both directions, and the names carry the net. prefix the
// chaos grid's Restrict labels rely on.
func TestNetPointsRegistered(t *testing.T) {
	all := make(map[Point]bool)
	for _, p := range Points() {
		all[p] = true
	}
	if len(NetPoints()) == 0 {
		t.Fatal("NetPoints() is empty")
	}
	for _, p := range NetPoints() {
		if !all[p] {
			t.Errorf("net point %q missing from Points()", p)
		}
		if !IsNetPoint(p) {
			t.Errorf("IsNetPoint(%q) = false for a NetPoints() entry", p)
		}
		if !strings.HasPrefix(string(p), "net.") {
			t.Errorf("net point %q lacks the net. prefix", p)
		}
	}
	for _, p := range Points() {
		if IsNetPoint(p) != strings.HasPrefix(string(p), "net.") {
			t.Errorf("IsNetPoint(%q) disagrees with the net. prefix", p)
		}
	}
}
