// Package provenance captures the flight-recorder sideband of a
// RelaxReplay recording: one Record per terminated interval describing
// *why* the interval ended (a remote conflict, the size cap, or the
// end-of-run flush), which line and remote core caused a conflict
// termination, the reorder instants observed while the interval was
// open, and the TRAQ / Snoop-Table occupancy at the moment of
// termination.
//
// The stream is strictly observational: recording with or without a
// Collector produces byte-identical interval logs. It exists so that
// rrtrace can attribute stalls and conflicts after the fact and so
// that replay-divergence forensics can show the provenance of the
// interval that diverged.
//
// All capture methods are nil-receiver no-ops, so the disabled path
// costs one pointer compare and zero allocations; the methods on the
// hot path carry //rrlint:hotpath and avoid composite literals.
package provenance

import (
	"fmt"
	"strconv"
)

// Cause says why an interval terminated.
type Cause uint8

const (
	// CauseUnknown marks a record whose termination cause was not
	// captured (e.g. decoded from a future-format frame).
	CauseUnknown Cause = iota
	// CauseConflict: a remote coherence transaction conflicted with the
	// interval's access signature (paper §3.2 interval termination).
	CauseConflict
	// CauseSize: the interval hit MaxIntervalInstrs (the chunk-size cap
	// that bounds CISN wraparound and replay granularity).
	CauseSize
	// CauseFinal: the end-of-run flush at Finalize terminated the last
	// open interval.
	CauseFinal
)

func (c Cause) String() string {
	switch c {
	case CauseConflict:
		return "conflict"
	case CauseSize:
		return "size"
	case CauseFinal:
		return "final"
	case CauseUnknown:
		return "unknown"
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// MarshalJSON renders the cause as its name so forensics JSON is
// self-describing ("conflict", not 1).
func (c Cause) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(c.String())), nil
}

// UnmarshalJSON accepts the names MarshalJSON emits; anything else
// decodes as CauseUnknown rather than failing the whole report.
func (c *Cause) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return err
	}
	switch s {
	case "conflict":
		*c = CauseConflict
	case "size":
		*c = CauseSize
	case "final":
		*c = CauseFinal
	default:
		*c = CauseUnknown
	}
	return nil
}

// Reorder kinds, matching the recorder's reordered-access classes.
const (
	ReorderLoad uint8 = iota
	ReorderStore
	ReorderAtomic
)

// ReorderKindString names a reorder kind for display.
func ReorderKindString(k uint8) string {
	switch k {
	case ReorderLoad:
		return "load"
	case ReorderStore:
		return "store"
	case ReorderAtomic:
		return "atomic"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Reorder is one reorder instant: an access that retired out of
// program order and was counted Offset intervals after it performed.
type Reorder struct {
	Kind   uint8  `json:"kind"`
	Offset uint16 `json:"offset"`
	Cycle  uint64 `json:"cycle"`
}

// Record is the provenance of one terminated interval.
type Record struct {
	Seq   uint64 `json:"seq"`
	Cause Cause  `json:"cause"`
	Cycle uint64 `json:"cycle"` // machine cycle at termination

	// Occupancy at the moment of termination.
	TRAQOccupancy uint32 `json:"traq_occupancy"`
	SnoopNonzero  uint32 `json:"snoop_nonzero"` // nonzero Snoop-Table counters

	// Conflict details (meaningful when Cause == CauseConflict).
	ConflictLine  uint64 `json:"conflict_line,omitempty"`
	ConflictWrite bool   `json:"conflict_write,omitempty"`
	RemoteCore    int32  `json:"remote_core"` // requesting core; -1 unknown

	// Reorders are the reorder instants observed while the interval was
	// open, in observation order.
	Reorders []Reorder `json:"reorders,omitempty"`
}

// CoreProvenance is one core's provenance stream, in interval order.
type CoreProvenance struct {
	Core    int
	Records []Record
}

// Collector gathers provenance across the cores of one recording. Use
// NewCollector, hand it to the recorder config, and Snapshot after the
// run. A nil *Collector (and the nil *CoreRecorder it hands out)
// disables capture everywhere.
type Collector struct {
	cores []*CoreRecorder
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Core returns the recorder for one core, creating it on first use.
// Safe only before the recording's concurrent phase hands the
// recorders out (NewRecorder time).
func (c *Collector) Core(core int) *CoreRecorder {
	if c == nil {
		return nil
	}
	for core >= len(c.cores) {
		c.cores = append(c.cores, nil)
	}
	if c.cores[core] == nil {
		c.cores[core] = &CoreRecorder{core: core, pendRemote: -1}
	}
	return c.cores[core]
}

// Snapshot returns the captured streams in core order, skipping cores
// that recorded nothing. The returned slices alias the collector's
// buffers; take the snapshot after recording finishes.
func (c *Collector) Snapshot() []CoreProvenance {
	if c == nil {
		return nil
	}
	var out []CoreProvenance
	for _, cr := range c.cores {
		if cr == nil || len(cr.recs) == 0 {
			continue
		}
		out = append(out, CoreProvenance{Core: cr.core, Records: cr.recs})
	}
	return out
}

// CoreRecorder captures one core's provenance. All Note* methods are
// nil-receiver no-ops; the recorder calls them unconditionally.
type CoreRecorder struct {
	core int
	recs []Record

	// cur is the scratch buffer of reorder instants for the interval
	// currently open; NoteTerminate copies it out and resets it.
	cur []Reorder

	// Pending conflict details, staged by NoteConflict just before the
	// recorder terminates the interval, consumed by NoteTerminate.
	pendLine   uint64
	pendWrite  bool
	pendRemote int32
}

// NoteConflict stages the conflicting line, access kind and requesting
// core for the termination that is about to follow. remote is -1 when
// the requester is unknown.
//
//rrlint:hotpath
func (c *CoreRecorder) NoteConflict(line uint64, isWrite bool, remote int) {
	if c == nil {
		return
	}
	c.pendLine = line
	c.pendWrite = isWrite
	c.pendRemote = int32(remote)
}

// NoteReorder records one reorder instant in the open interval.
//
//rrlint:hotpath
func (c *CoreRecorder) NoteReorder(kind uint8, offset uint16, cycle uint64) {
	if c == nil {
		return
	}
	n := len(c.cur)
	if n == cap(c.cur) {
		c.growCur()
	}
	c.cur = c.cur[:n+1]
	r := &c.cur[n]
	r.Kind = kind
	r.Offset = offset
	r.Cycle = cycle
}

// NoteTerminate closes the open interval: it appends a Record carrying
// the cause, occupancy and any staged conflict details, attaches the
// accumulated reorder instants, and resets the per-interval state.
//
//rrlint:hotpath
func (c *CoreRecorder) NoteTerminate(seq uint64, cause Cause, traq, snoopNonzero int, cycle uint64) {
	if c == nil {
		return
	}
	n := len(c.recs)
	if n == cap(c.recs) {
		c.growRecs()
	}
	c.recs = c.recs[:n+1]
	r := &c.recs[n]
	r.Seq = seq
	r.Cause = cause
	r.Cycle = cycle
	r.TRAQOccupancy = uint32(traq)
	r.SnoopNonzero = uint32(snoopNonzero)
	r.ConflictLine = c.pendLine
	r.ConflictWrite = c.pendWrite
	r.RemoteCore = c.pendRemote
	r.Reorders = nil
	if len(c.cur) > 0 {
		r.Reorders = c.takeReorders()
	}
	c.cur = c.cur[:0]
	c.pendLine = 0
	c.pendWrite = false
	c.pendRemote = -1
}

// growCur and growRecs live outside the hotpath-annotated methods so
// the (amortized, enabled-only) allocations happen in plainly cold
// helpers the alloc check does not guard.
func (c *CoreRecorder) growCur() {
	c.cur = append(c.cur, Reorder{})[:len(c.cur)]
}

func (c *CoreRecorder) growRecs() {
	c.recs = append(c.recs, Record{})[:len(c.recs)]
}

// takeReorders copies the scratch instants into a right-sized slice
// owned by the record being closed.
func (c *CoreRecorder) takeReorders() []Reorder {
	out := make([]Reorder, len(c.cur))
	copy(out, c.cur)
	return out
}
