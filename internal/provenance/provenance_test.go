package provenance

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestNilSafety: every capture method must be a no-op on a nil
// collector / recorder — that is the whole disabled path.
func TestNilSafety(t *testing.T) {
	var c *Collector
	cr := c.Core(3)
	if cr != nil {
		t.Fatalf("nil collector handed out a recorder: %v", cr)
	}
	cr.NoteConflict(0x40, true, 1)
	cr.NoteReorder(ReorderStore, 2, 100)
	cr.NoteTerminate(0, CauseConflict, 4, 2, 101)
	if got := c.Snapshot(); got != nil {
		t.Fatalf("nil collector snapshot = %v, want nil", got)
	}
}

// TestCaptureSequence drives a plausible recorder call sequence and
// checks the snapshot reflects it exactly.
func TestCaptureSequence(t *testing.T) {
	c := NewCollector()
	r0 := c.Core(0)
	r2 := c.Core(2)

	// Core 0, interval 0: two reorders then a conflict termination.
	r0.NoteReorder(ReorderLoad, 1, 10)
	r0.NoteReorder(ReorderStore, 2, 12)
	r0.NoteConflict(0x80, true, 2)
	r0.NoteTerminate(0, CauseConflict, 5, 3, 20)
	// Core 0, interval 1: clean size termination — pending conflict
	// state must have been reset.
	r0.NoteTerminate(1, CauseSize, 0, 1, 40)
	// Core 2: a single final termination with no reorders.
	r2.NoteTerminate(0, CauseFinal, 2, 0, 99)

	snap := c.Snapshot()
	want := []CoreProvenance{
		{Core: 0, Records: []Record{
			{Seq: 0, Cause: CauseConflict, Cycle: 20, TRAQOccupancy: 5, SnoopNonzero: 3,
				ConflictLine: 0x80, ConflictWrite: true, RemoteCore: 2,
				Reorders: []Reorder{{Kind: ReorderLoad, Offset: 1, Cycle: 10}, {Kind: ReorderStore, Offset: 2, Cycle: 12}}},
			{Seq: 1, Cause: CauseSize, Cycle: 40, SnoopNonzero: 1, RemoteCore: -1},
		}},
		{Core: 2, Records: []Record{
			{Seq: 0, Cause: CauseFinal, Cycle: 99, TRAQOccupancy: 2, RemoteCore: -1},
		}},
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot mismatch:\n got %+v\nwant %+v", snap, want)
	}
}

// TestReorderBuffersDoNotAlias: the scratch reorder buffer is reused
// across intervals; records must own their copies.
func TestReorderBuffersDoNotAlias(t *testing.T) {
	c := NewCollector()
	r := c.Core(0)
	r.NoteReorder(ReorderLoad, 1, 5)
	r.NoteTerminate(0, CauseSize, 0, 0, 6)
	r.NoteReorder(ReorderAtomic, 7, 8)
	r.NoteTerminate(1, CauseSize, 0, 0, 9)
	snap := c.Snapshot()
	first := snap[0].Records[0].Reorders
	if len(first) != 1 || first[0].Kind != ReorderLoad {
		t.Fatalf("first interval's reorders clobbered: %+v", first)
	}
	second := snap[0].Records[1].Reorders
	if len(second) != 1 || second[0].Kind != ReorderAtomic {
		t.Fatalf("second interval's reorders wrong: %+v", second)
	}
}

// TestSnapshotSkipsEmptyCores: cores that never terminated an interval
// do not appear (keeps wire frames dense).
func TestSnapshotSkipsEmptyCores(t *testing.T) {
	c := NewCollector()
	c.Core(0)
	c.Core(1).NoteTerminate(0, CauseFinal, 0, 0, 1)
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Core != 1 {
		t.Fatalf("snapshot = %+v, want only core 1", snap)
	}
}

// TestCauseJSON pins the self-describing cause rendering both ways.
func TestCauseJSON(t *testing.T) {
	rec := Record{Seq: 3, Cause: CauseConflict, RemoteCore: 1}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("JSON round trip changed the record: %+v -> %s -> %+v", rec, b, back)
	}
	var probe struct {
		Cause string `json:"cause"`
	}
	if err := json.Unmarshal(b, &probe); err != nil || probe.Cause != "conflict" {
		t.Fatalf("cause rendered as %q (err %v), want \"conflict\"", probe.Cause, err)
	}
}

// TestCauseStrings covers the display names rrtrace prints.
func TestCauseStrings(t *testing.T) {
	cases := map[Cause]string{
		CauseUnknown: "unknown", CauseConflict: "conflict",
		CauseSize: "size", CauseFinal: "final", Cause(9): "cause(9)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Cause(%d).String() = %q, want %q", c, got, want)
		}
	}
	kinds := map[uint8]string{ReorderLoad: "load", ReorderStore: "store", ReorderAtomic: "atomic", 9: "kind(9)"}
	for k, want := range kinds {
		if got := ReorderKindString(k); got != want {
			t.Errorf("ReorderKindString(%d) = %q, want %q", k, got, want)
		}
	}
}

// TestZeroAllocWhenDisabled is the contract the recorder hot path
// relies on: nil-receiver capture must not allocate.
func TestZeroAllocWhenDisabled(t *testing.T) {
	var cr *CoreRecorder
	n := testing.AllocsPerRun(100, func() {
		cr.NoteConflict(1, false, 0)
		cr.NoteReorder(ReorderLoad, 0, 0)
		cr.NoteTerminate(0, CauseSize, 0, 0, 0)
	})
	if n != 0 {
		t.Fatalf("disabled capture allocates %.1f allocs/op, want 0", n)
	}
}
